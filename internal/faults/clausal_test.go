package faults

import (
	"bytes"
	"reflect"
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/drat"
	"satcheck/internal/kernelcheck"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// solveClausal solves an UNSAT formula and returns its parsed DRAT proof and
// its LRAT proof (derived from the native trace).
func solveClausal(t *testing.T) (*drat.Proof, *drat.LRATProof) {
	t.Helper()
	f := php(4)
	s, err := solver.New(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	var buf bytes.Buffer
	s.SetProofSink(drat.NewWriter(&buf))
	st, err := s.Solve()
	if err != nil || st != solver.StatusUnsat {
		t.Fatalf("st=%v err=%v", st, err)
	}
	proof, err := drat.Load(drat.BytesSource(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var lb bytes.Buffer
	if _, err := kernelcheck.TraceToLRAT(f, mt, &lb, checker.Options{}); err != nil {
		t.Fatal(err)
	}
	lp, err := drat.LoadLRAT(drat.BytesSource(lb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return proof, lp
}

// TestClausalCatalogueIntegrity pins names (unique, prefixed) and the ByName
// lookups of both clausal catalogues.
func TestClausalCatalogueIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range ClausalAll() {
		if seen[m.Name] {
			t.Errorf("duplicate clausal mutation name %q", m.Name)
		}
		seen[m.Name] = true
		if len(m.Name) < 6 || m.Name[:5] != "drat-" {
			t.Errorf("clausal mutation %q lacks the drat- prefix", m.Name)
		}
		if got, err := ClausalByName(m.Name); err != nil || got.Name != m.Name {
			t.Errorf("ClausalByName(%q) = %v, %v", m.Name, got.Name, err)
		}
		if m.Bug == "" {
			t.Errorf("clausal mutation %q has no bug description", m.Name)
		}
	}
	for _, m := range LRATAll() {
		if seen[m.Name] {
			t.Errorf("duplicate mutation name %q across catalogues", m.Name)
		}
		seen[m.Name] = true
		if len(m.Name) < 6 || m.Name[:5] != "lrat-" {
			t.Errorf("LRAT mutation %q lacks the lrat- prefix", m.Name)
		}
		if got, err := LRATByName(m.Name); err != nil || got.Name != m.Name {
			t.Errorf("LRATByName(%q) = %v, %v", m.Name, got.Name, err)
		}
		if m.Bug == "" {
			t.Errorf("LRAT mutation %q has no bug description", m.Name)
		}
	}
	if _, err := ClausalByName("no-such"); err == nil {
		t.Error("ClausalByName accepted an unknown name")
	}
	if _, err := LRATByName("no-such"); err == nil {
		t.Error("LRATByName accepted an unknown name")
	}
}

// TestClausalMutationsApplyAndDoNotAlias: every mutation in both catalogues
// must apply to a real proof, visibly change it, and leave the input proof
// bit-identical (the deep-copy contract the harness depends on when it
// injects many mutations into one parsed proof).
func TestClausalMutationsApplyAndDoNotAlias(t *testing.T) {
	proof, lp := solveClausal(t)
	origSteps := cloneSteps(proof.Steps)
	origLines := cloneLines(lp.Lines)
	for _, m := range ClausalAll() {
		mut, ok := InjectClausal(m, proof, 1)
		if !ok {
			t.Errorf("clausal mutation %s did not apply to a PHP proof", m.Name)
			continue
		}
		if reflect.DeepEqual(mut.Steps, origSteps) {
			t.Errorf("clausal mutation %s returned an unchanged proof", m.Name)
		}
		if !reflect.DeepEqual(proof.Steps, origSteps) {
			t.Fatalf("clausal mutation %s corrupted its input proof", m.Name)
		}
	}
	for _, m := range LRATAll() {
		mut, ok := InjectLRAT(m, lp, 1)
		if !ok {
			t.Errorf("LRAT mutation %s did not apply to a PHP proof", m.Name)
			continue
		}
		if reflect.DeepEqual(mut.Lines, origLines) {
			t.Errorf("LRAT mutation %s returned an unchanged proof", m.Name)
		}
		if !reflect.DeepEqual(lp.Lines, origLines) {
			t.Fatalf("LRAT mutation %s corrupted its input proof", m.Name)
		}
	}
}

// TestClausalMutationShapes pins what each DRAT operator structurally does.
func TestClausalMutationShapes(t *testing.T) {
	proof, lp := solveClausal(t)
	adds := func(steps []drat.Step) (n int) {
		for _, st := range steps {
			if !st.Del && len(st.Lits) > 0 {
				n++
			}
		}
		return n
	}
	dels := func(steps []drat.Step) (n int) {
		for _, st := range steps {
			if st.Del {
				n++
			}
		}
		return n
	}
	base := proof.Steps
	for seed := int64(0); seed < 5; seed++ {
		check := func(name string, cond bool, format string, args ...any) {
			if !cond {
				t.Errorf("seed %d, %s: "+format, append([]any{seed, name}, args...)...)
			}
		}
		if mut, ok := InjectClausal(mustClausal(t, "drat-drop-addition"), proof, seed); ok {
			check("drat-drop-addition", adds(mut.Steps) == adds(base)-1,
				"adds %d, want %d", adds(mut.Steps), adds(base)-1)
		}
		if mut, ok := InjectClausal(mustClausal(t, "drat-duplicate-addition"), proof, seed); ok {
			check("drat-duplicate-addition", adds(mut.Steps) == adds(base)+1,
				"adds %d, want %d", adds(mut.Steps), adds(base)+1)
		}
		if mut, ok := InjectClausal(mustClausal(t, "drat-negate-literal"), proof, seed); ok {
			check("drat-negate-literal", len(mut.Steps) == len(base),
				"step count changed: %d -> %d", len(base), len(mut.Steps))
			diff := 0
			for i := range base {
				if !reflect.DeepEqual(base[i], mut.Steps[i]) {
					diff++
				}
			}
			check("drat-negate-literal", diff == 1, "changed %d steps, want 1", diff)
		}
		if mut, ok := InjectClausal(mustClausal(t, "drat-reorder-additions"), proof, seed); ok {
			check("drat-reorder-additions", len(mut.Steps) == len(base) &&
				adds(mut.Steps) == adds(base) && dels(mut.Steps) == dels(base),
				"reorder changed counts")
		}
		if mut, ok := InjectClausal(mustClausal(t, "drat-flip-add-to-delete"), proof, seed); ok {
			check("drat-flip-add-to-delete", dels(mut.Steps) == dels(base)+1,
				"dels %d, want %d", dels(mut.Steps), dels(base)+1)
		}
	}

	// LRAT shapes: each operator touches hints or lines in a pinned way, and
	// the catalogue's promise that corrupted hints stay positive must hold
	// (negative hints would open a RAT group and leave the cross-checkable
	// fragment).
	hints := func(lines []drat.LRATLine) (n int) {
		for _, ln := range lines {
			n += len(ln.Hints)
		}
		return n
	}
	for seed := int64(0); seed < 5; seed++ {
		if mut, ok := InjectLRAT(mustLRAT(t, "lrat-corrupt-hint"), lp, seed); ok {
			if hints(mut.Lines) != hints(lp.Lines) {
				t.Errorf("seed %d: lrat-corrupt-hint changed the hint count", seed)
			}
			assertHintsPositive(t, mut.Lines, lp.Lines)
		}
		if mut, ok := InjectLRAT(mustLRAT(t, "lrat-drop-hint"), lp, seed); ok {
			if hints(mut.Lines) != hints(lp.Lines)-1 {
				t.Errorf("seed %d: lrat-drop-hint: hints %d, want %d",
					seed, hints(mut.Lines), hints(lp.Lines)-1)
			}
		}
		if mut, ok := InjectLRAT(mustLRAT(t, "lrat-swap-hints"), lp, seed); ok {
			if hints(mut.Lines) != hints(lp.Lines) {
				t.Errorf("seed %d: lrat-swap-hints changed the hint count", seed)
			}
		}
		if mut, ok := InjectLRAT(mustLRAT(t, "lrat-drop-line"), lp, seed); ok {
			if len(mut.Lines) != len(lp.Lines)-1 {
				t.Errorf("seed %d: lrat-drop-line: lines %d, want %d",
					seed, len(mut.Lines), len(lp.Lines)-1)
			}
		}
	}
}

// assertHintsPositive checks corruption introduced no new negative hints.
func assertHintsPositive(t *testing.T, mut, orig []drat.LRATLine) {
	t.Helper()
	neg := func(lines []drat.LRATLine) (n int) {
		for _, ln := range lines {
			for _, h := range ln.Hints {
				if h < 0 {
					n++
				}
			}
		}
		return n
	}
	if neg(mut) > neg(orig) {
		t.Error("mutation introduced a negative hint (RAT group opener)")
	}
}

// TestClausalNotApplicableOnEmptyProof: every operator must report
// inapplicability on an empty proof instead of fabricating steps.
func TestClausalNotApplicableOnEmptyProof(t *testing.T) {
	empty := &drat.Proof{}
	for _, m := range ClausalAll() {
		if _, ok := InjectClausal(m, empty, 1); ok {
			t.Errorf("clausal mutation %s claims to apply to an empty proof", m.Name)
		}
	}
	emptyL := &drat.LRATProof{}
	for _, m := range LRATAll() {
		if _, ok := InjectLRAT(m, emptyL, 1); ok {
			t.Errorf("LRAT mutation %s claims to apply to an empty proof", m.Name)
		}
	}
}

func mustClausal(t *testing.T, name string) ClausalMutation {
	t.Helper()
	m, err := ClausalByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustLRAT(t *testing.T, name string) LRATMutation {
	t.Helper()
	m, err := LRATByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
