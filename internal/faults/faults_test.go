package faults

import (
	"errors"
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

func php(holes int) *cnf.Formula {
	pigeons := holes + 1
	f := cnf.NewFormula(pigeons * holes)
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		cl := make([]int, holes)
		for h := range cl {
			cl[h] = v(p, h)
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

func solveTrace(t *testing.T, f *cnf.Formula) *trace.MemoryTrace {
	t.Helper()
	s, err := solver.New(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	st, err := s.Solve()
	if err != nil || st != solver.StatusUnsat {
		t.Fatalf("st=%v err=%v", st, err)
	}
	return mt
}

// TestEveryMutationApplies ensures the catalogue is exercised by a real
// trace (a mutation that never applies is dead weight).
func TestEveryMutationApplies(t *testing.T) {
	mt := solveTrace(t, php(5))
	for _, m := range All() {
		if _, ok := Inject(m, mt, 1); !ok {
			t.Errorf("mutation %s did not apply to a PHP trace", m.Name)
		}
	}
}

// TestMutationsDoNotAliasInput verifies injection never corrupts the
// original trace.
func TestMutationsDoNotAliasInput(t *testing.T) {
	f := php(4)
	mt := solveTrace(t, f)
	for _, m := range All() {
		if _, ok := Inject(m, mt, 3); !ok {
			continue
		}
		// The pristine trace must still verify after each injection.
		if _, err := checker.BreadthFirst(f, mt, checker.Options{}); err != nil {
			t.Fatalf("mutation %s corrupted the original trace: %v", m.Name, err)
		}
	}
}

// TestBreadthFirstCatchesMutations: the breadth-first checker validates
// every learned clause, so across a handful of seeds each fault class must
// be detected on at least one injection, and most injections must be
// rejected. (A mutation can occasionally leave behind a different-but-valid
// resolution proof; the claim being checked is unsatisfiability, not
// bit-exactness of the solver's internal derivation.)
func TestBreadthFirstCatchesMutations(t *testing.T) {
	f := php(5)
	mt := solveTrace(t, f)
	for _, m := range All() {
		applied, rejected := 0, 0
		for seed := int64(0); seed < 8; seed++ {
			bad, ok := Inject(m, mt, seed)
			if !ok {
				continue
			}
			applied++
			if _, err := checker.BreadthFirst(f, bad, checker.Options{}); err != nil {
				rejected++
				var ce *checker.CheckError
				if !errors.As(err, &ce) {
					t.Errorf("%s: rejection is not a structured CheckError: %v", m.Name, err)
				}
			}
		}
		if applied == 0 {
			t.Errorf("%s: never applied", m.Name)
			continue
		}
		if rejected == 0 {
			t.Errorf("%s: breadth-first accepted all %d injected traces", m.Name, applied)
		}
	}
}

// TestStructuralMutationsAlwaysRejected: fault classes that break the trace
// structure itself can never be mistaken for a valid proof, by any checker.
func TestStructuralMutationsAlwaysRejected(t *testing.T) {
	f := php(5)
	mt := solveTrace(t, f)
	structural := []string{"truncated-trace", "sourceless-learned-clause", "drop-learned-clause"}
	checkers := map[string]func(*cnf.Formula, trace.Source, checker.Options) (*checker.Result, error){
		"depth-first":   checker.DepthFirst,
		"breadth-first": checker.BreadthFirst,
		"hybrid":        checker.Hybrid,
	}
	for _, name := range structural {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			bad, ok := Inject(m, mt, seed)
			if !ok {
				continue
			}
			for cname, check := range checkers {
				if _, err := check(f, bad, checker.Options{}); err == nil {
					t.Errorf("%s: %s accepted structurally corrupt trace (seed %d)", name, cname, seed)
				}
			}
		}
	}
}

// TestDiagnosticsNameTheFaultSite: rejections should point at a concrete
// clause, which is what makes the checker useful for debugging solvers.
func TestDiagnosticsNameTheFaultSite(t *testing.T) {
	f := php(5)
	mt := solveTrace(t, f)
	m, err := ByName("drop-resolution-step")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		bad, ok := Inject(m, mt, seed)
		if !ok {
			continue
		}
		_, cerr := checker.BreadthFirst(f, bad, checker.Options{})
		var ce *checker.CheckError
		if errors.As(cerr, &ce) && ce.ClauseID >= 0 {
			found = true
		}
	}
	if !found {
		t.Error("no rejection carried a clause ID diagnostic")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("no-such-fault"); err == nil {
		t.Error("unknown name accepted")
	}
	m, err := ByName("wrong-antecedent")
	if err != nil || m.Name != "wrong-antecedent" {
		t.Errorf("ByName: %v %v", m.Name, err)
	}
}
