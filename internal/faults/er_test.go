package faults

import (
	"bytes"
	"testing"

	"satcheck/internal/bdd"
	"satcheck/internal/checker"
	"satcheck/internal/drat"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
)

// solveER solves an UNSAT instance with the BDD backend and round-trips its
// ER proof through the serializer, so mutations see exactly what a proof file
// reader would.
func solveER(t *testing.T) (ins gen.Instance, proof *bdd.Proof) {
	t.Helper()
	ins = gen.XorMiter(6)
	res, err := bdd.Solve(ins.F, bdd.Options{Proof: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusUnsat {
		t.Fatalf("status = %v", res.Status)
	}
	var buf bytes.Buffer
	if err := bdd.WriteER(&buf, res.Proof); err != nil {
		t.Fatal(err)
	}
	proof, err = bdd.ParseER(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ins, proof
}

// TestERCatalogueIntegrity pins names (unique, er- prefixed) and the ByName
// lookup.
func TestERCatalogueIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range ERAll() {
		if seen[m.Name] {
			t.Errorf("duplicate ER mutation name %q", m.Name)
		}
		seen[m.Name] = true
		if len(m.Name) < 4 || m.Name[:3] != "er-" {
			t.Errorf("ER mutation %q lacks the er- prefix", m.Name)
		}
		if got, err := ERByName(m.Name); err != nil || got.Name != m.Name {
			t.Errorf("ERByName(%q) = %v, %v", m.Name, got.Name, err)
		}
		if m.Bug == "" {
			t.Errorf("ER mutation %q has no bug description", m.Name)
		}
	}
	if _, err := ERByName("no-such"); err == nil {
		t.Error("unknown ER mutation name accepted")
	}
}

// TestERMutantsHoldBridgeContract drives every catalogue mutation over a real
// BDD proof and asserts the contract the harness enforces: the ER→LRAT bridge
// either rejects the mutant, or — when the corruption is benign — the
// mutant's clause sequence still passes the independent DRAT checker with its
// hints stripped. Each mutation must apply at least once, never alias the
// input, and be rejected at least once across seeds (a mutation whose every
// corruption is benign tests nothing).
func TestERMutantsHoldBridgeContract(t *testing.T) {
	ins, proof := solveER(t)
	orig := cloneERLines(proof.Lines)
	for _, m := range ERAll() {
		applied, rejected := 0, 0
		for seed := int64(0); seed < 8; seed++ {
			mut, ok := InjectER(m, proof, seed)
			if !ok {
				continue
			}
			applied++
			if _, err := bdd.CheckER(ins.F, mut, checker.Options{}); err != nil {
				rejected++
				continue
			}
			stripped := bdd.ToDRAT(mut)
			var buf bytes.Buffer
			w := drat.NewWriter(&buf)
			for _, st := range stripped.Steps {
				_ = w.Add(st.Lits)
			}
			_ = w.Close()
			if _, err := drat.Check(ins.F, drat.BytesSource(buf.Bytes()), drat.Forward, checker.Options{}); err != nil {
				t.Errorf("%s seed %d: bridge accepted a mutant whose clause sequence fails the DRAT check: %v",
					m.Name, seed, err)
			}
		}
		if applied == 0 {
			t.Errorf("%s never applied to the proof", m.Name)
		}
		if rejected == 0 {
			t.Errorf("%s was never rejected across seeds (all corruptions benign)", m.Name)
		}
	}
	// Mutations must corrupt copies, never the input proof.
	for i := range orig {
		if orig[i].ID != proof.Lines[i].ID || len(orig[i].Lits) != len(proof.Lines[i].Lits) {
			t.Fatalf("line %d of the input proof was mutated in place", i)
		}
		for j := range orig[i].Lits {
			if orig[i].Lits[j] != proof.Lines[i].Lits[j] {
				t.Fatalf("line %d of the input proof was mutated in place", i)
			}
		}
	}
	// The unmutated proof still checks — the baseline the contract is against.
	if _, err := bdd.CheckER(ins.F, proof, checker.Options{}); err != nil {
		t.Fatalf("unmutated proof rejected: %v", err)
	}
}
