package faults

import (
	"fmt"
	"math/rand"

	"satcheck/internal/cnf"
	"satcheck/internal/drat"
)

// ClausalMutation is one fault-injection operator over a parsed DRUP/DRAT
// proof, modelling the bugs a clausal proof logger can have: lost lines,
// duplicated buffers, mis-serialized literals, reordered writes. Unlike the
// native-trace catalogue, clausal corruption is frequently *benign* — DRUP
// proofs are redundant, so dropping an unused lemma or duplicating a line
// usually leaves a still-valid proof. The adversarial harness therefore does
// not demand rejection of every mutant; it demands that the independent
// clausal checkers never *disagree* about one (see internal/harness).
type ClausalMutation struct {
	// Name identifies the fault class ("drat-..." prefix).
	Name string
	// Bug describes the proof-logging bug this corruption models.
	Bug string
	// Apply corrupts a copy of the steps, returning the corrupted steps and
	// whether the mutation was applicable to this proof.
	Apply func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool)
}

// cloneSteps deep-copies proof steps so mutations never alias the input.
func cloneSteps(steps []drat.Step) []drat.Step {
	out := make([]drat.Step, len(steps))
	for i, st := range steps {
		out[i] = st
		if st.Lits != nil {
			out[i].Lits = append([]cnf.Lit(nil), st.Lits...)
		}
	}
	return out
}

// pickAdds returns the indices of non-empty addition steps.
func pickAdds(steps []drat.Step) []int {
	var idx []int
	for i, st := range steps {
		if !st.Del && len(st.Lits) > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// ClausalAll returns the DRAT-proof mutation catalogue.
func ClausalAll() []ClausalMutation {
	return []ClausalMutation{
		{
			Name: "drat-drop-addition",
			Bug:  "a learned clause is added to the database without its proof line being written",
			Apply: func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool) {
				steps = cloneSteps(steps)
				idx := pickAdds(steps)
				if len(idx) == 0 {
					return nil, false
				}
				k := idx[rng.Intn(len(idx))]
				return append(steps[:k], steps[k+1:]...), true
			},
		},
		{
			Name: "drat-duplicate-addition",
			Bug:  "a buffered proof line is flushed twice",
			Apply: func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool) {
				steps = cloneSteps(steps)
				idx := pickAdds(steps)
				if len(idx) == 0 {
					return nil, false
				}
				k := idx[rng.Intn(len(idx))]
				dup := drat.Step{Lits: append([]cnf.Lit(nil), steps[k].Lits...)}
				steps = append(steps, drat.Step{})
				copy(steps[k+1:], steps[k:])
				steps[k+1] = dup
				return steps, true
			},
		},
		{
			Name: "drat-negate-literal",
			Bug:  "a literal's sign bit is lost when serializing a lemma",
			Apply: func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool) {
				steps = cloneSteps(steps)
				idx := pickAdds(steps)
				if len(idx) == 0 {
					return nil, false
				}
				st := &steps[idx[rng.Intn(len(idx))]]
				j := rng.Intn(len(st.Lits))
				st.Lits[j] = st.Lits[j].Neg()
				return steps, true
			},
		},
		{
			Name: "drat-reorder-additions",
			Bug:  "concurrent proof writers interleave lines out of derivation order",
			Apply: func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool) {
				steps = cloneSteps(steps)
				idx := pickAdds(steps)
				if len(idx) < 2 {
					return nil, false
				}
				i := rng.Intn(len(idx) - 1)
				a, b := idx[i], idx[i+1+rng.Intn(len(idx)-i-1)]
				steps[a], steps[b] = steps[b], steps[a]
				return steps, true
			},
		},
		{
			Name: "drat-flip-add-to-delete",
			Bug:  "the addition/deletion tag byte is corrupted on one line",
			Apply: func(steps []drat.Step, rng *rand.Rand) ([]drat.Step, bool) {
				steps = cloneSteps(steps)
				idx := pickAdds(steps)
				if len(idx) == 0 {
					return nil, false
				}
				steps[idx[rng.Intn(len(idx))]].Del = true
				return steps, true
			},
		},
	}
}

// InjectClausal applies the mutation to a parsed proof, returning a corrupted
// copy, or ok=false when the mutation does not apply.
func InjectClausal(m ClausalMutation, p *drat.Proof, seed int64) (*drat.Proof, bool) {
	rng := rand.New(rand.NewSource(seed))
	steps, ok := m.Apply(p.Steps, rng)
	if !ok {
		return nil, false
	}
	return &drat.Proof{Steps: steps, Binary: p.Binary, Ints: p.Ints}, true
}

// ClausalByName returns the named DRAT mutation.
func ClausalByName(name string) (ClausalMutation, error) {
	for _, m := range ClausalAll() {
		if m.Name == name {
			return m, nil
		}
	}
	return ClausalMutation{}, fmt.Errorf("faults: unknown clausal mutation %q", name)
}

// LRATMutation is one fault-injection operator over a parsed LRAT proof,
// corrupting the propagation hints that make LRAT checkable without search.
// An LRAT checker follows hints blindly, so hint corruption is exactly where
// a lazy implementation would wave a bad proof through.
type LRATMutation struct {
	// Name identifies the fault class ("lrat-..." prefix).
	Name string
	// Bug describes the emitter/checker bug this corruption models.
	Bug string
	// Apply corrupts a copy of the lines, returning the corrupted lines and
	// whether the mutation was applicable.
	Apply func(lines []drat.LRATLine, rng *rand.Rand) ([]drat.LRATLine, bool)
}

// cloneLines deep-copies LRAT lines.
func cloneLines(lines []drat.LRATLine) []drat.LRATLine {
	out := make([]drat.LRATLine, len(lines))
	for i, ln := range lines {
		out[i] = ln
		if ln.Lits != nil {
			out[i].Lits = append(cnf.Clause(nil), ln.Lits...)
		}
		if ln.Hints != nil {
			out[i].Hints = append([]int(nil), ln.Hints...)
		}
		if ln.DelIDs != nil {
			out[i].DelIDs = append([]int(nil), ln.DelIDs...)
		}
	}
	return out
}

// pickHinted returns the indices of addition lines with at least min hints.
func pickHinted(lines []drat.LRATLine, min int) []int {
	var idx []int
	for i, ln := range lines {
		if !ln.Del && len(ln.Hints) >= min {
			idx = append(idx, i)
		}
	}
	return idx
}

// LRATAll returns the LRAT-proof mutation catalogue. Every mutation keeps
// hint values positive, so corruption never turns a RUP hint list into a
// RAT candidate group — the corrupted proof stays in the fragment the
// harness can cross-check against the DRAT checkers.
func LRATAll() []LRATMutation {
	return []LRATMutation{
		{
			Name: "lrat-corrupt-hint",
			Bug:  "a propagation hint references the wrong clause ID",
			Apply: func(lines []drat.LRATLine, rng *rand.Rand) ([]drat.LRATLine, bool) {
				lines = cloneLines(lines)
				idx := pickHinted(lines, 1)
				if len(idx) == 0 {
					return nil, false
				}
				ln := &lines[idx[rng.Intn(len(idx))]]
				j := rng.Intn(len(ln.Hints))
				if ln.Hints[j] < 0 {
					return nil, false // don't touch RAT group openers
				}
				if ln.Hints[j] > 1 {
					ln.Hints[j]--
				} else {
					ln.Hints[j]++
				}
				return lines, true
			},
		},
		{
			Name: "lrat-drop-hint",
			Bug:  "one hint is lost when the hint buffer is serialized",
			Apply: func(lines []drat.LRATLine, rng *rand.Rand) ([]drat.LRATLine, bool) {
				lines = cloneLines(lines)
				idx := pickHinted(lines, 2)
				if len(idx) == 0 {
					return nil, false
				}
				ln := &lines[idx[rng.Intn(len(idx))]]
				j := rng.Intn(len(ln.Hints))
				if ln.Hints[j] < 0 {
					return nil, false
				}
				ln.Hints = append(ln.Hints[:j], ln.Hints[j+1:]...)
				return lines, true
			},
		},
		{
			Name: "lrat-swap-hints",
			Bug:  "two hints are written in the wrong order",
			Apply: func(lines []drat.LRATLine, rng *rand.Rand) ([]drat.LRATLine, bool) {
				lines = cloneLines(lines)
				idx := pickHinted(lines, 2)
				if len(idx) == 0 {
					return nil, false
				}
				ln := &lines[idx[rng.Intn(len(idx))]]
				j := rng.Intn(len(ln.Hints) - 1)
				if ln.Hints[j] < 0 || ln.Hints[j+1] < 0 {
					return nil, false
				}
				ln.Hints[j], ln.Hints[j+1] = ln.Hints[j+1], ln.Hints[j]
				return lines, true
			},
		},
		{
			Name: "lrat-drop-line",
			Bug:  "an addition line vanishes while later lines still hint at its ID",
			Apply: func(lines []drat.LRATLine, rng *rand.Rand) ([]drat.LRATLine, bool) {
				lines = cloneLines(lines)
				var idx []int
				for i, ln := range lines {
					if !ln.Del && len(ln.Lits) > 0 {
						idx = append(idx, i)
					}
				}
				if len(idx) == 0 {
					return nil, false
				}
				k := idx[rng.Intn(len(idx))]
				return append(lines[:k], lines[k+1:]...), true
			},
		},
	}
}

// InjectLRAT applies the mutation to a parsed LRAT proof, returning a
// corrupted copy, or ok=false when the mutation does not apply.
func InjectLRAT(m LRATMutation, p *drat.LRATProof, seed int64) (*drat.LRATProof, bool) {
	rng := rand.New(rand.NewSource(seed))
	lines, ok := m.Apply(p.Lines, rng)
	if !ok {
		return nil, false
	}
	return &drat.LRATProof{Lines: lines, Ints: p.Ints}, true
}

// LRATByName returns the named LRAT mutation.
func LRATByName(name string) (LRATMutation, error) {
	for _, m := range LRATAll() {
		if m.Name == name {
			return m, nil
		}
	}
	return LRATMutation{}, fmt.Errorf("faults: unknown LRAT mutation %q", name)
}
