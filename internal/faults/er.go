package faults

import (
	"fmt"
	"math/rand"

	"satcheck/internal/bdd"
)

// ERMutation is one fault-injection operator over a parsed extended-resolution
// proof from the BDD backend, modelling the bugs its proof emitter can have:
// a definition clause that reaches the solver's clause database but not the
// proof file, or a definition serialized with its literals reordered so the
// extension pivot no longer leads. Like clausal corruption, an ER mutation can
// be benign — a definition clause no derivation ever hints at may vanish
// without invalidating the proof — so the harness demands not blanket
// rejection but the bridge contract: an accepted mutant's clause sequence must
// still pass the independent DRAT checker with its hints stripped.
type ERMutation struct {
	// Name identifies the fault class ("er-..." prefix).
	Name string
	// Bug describes the emitter bug this corruption models.
	Bug string
	// Apply corrupts a copy of the lines, returning the corrupted lines and
	// whether the mutation was applicable to this proof.
	Apply func(lines []bdd.Line, rng *rand.Rand) ([]bdd.Line, bool)
}

// cloneERLines deep-copies ER proof lines.
func cloneERLines(lines []bdd.Line) []bdd.Line {
	out := make([]bdd.Line, len(lines))
	for i, ln := range lines {
		out[i] = ln
		if ln.Lits != nil {
			out[i].Lits = append([]int(nil), ln.Lits...)
		}
		if ln.Hints != nil {
			out[i].Hints = append([]int(nil), ln.Hints...)
		}
	}
	return out
}

// pickDefs returns the indices of definition lines with at least min literals.
func pickDefs(lines []bdd.Line, min int) []int {
	var idx []int
	for i, ln := range lines {
		if ln.Ext && len(ln.Lits) >= min {
			idx = append(idx, i)
		}
	}
	return idx
}

// ERAll returns the ER-proof mutation catalogue.
func ERAll() []ERMutation {
	return []ERMutation{
		{
			Name: "er-drop-definition",
			Bug:  "a defining clause of an extension variable reaches the live clause set but is never written to the proof",
			Apply: func(lines []bdd.Line, rng *rand.Rand) ([]bdd.Line, bool) {
				lines = cloneERLines(lines)
				idx := pickDefs(lines, 1)
				if len(idx) == 0 {
					return nil, false
				}
				k := idx[rng.Intn(len(idx))]
				return append(lines[:k], lines[k+1:]...), true
			},
		},
		{
			Name: "er-swap-pivot",
			Bug:  "a definition is serialized with its literals reordered, moving the extension pivot out of first position",
			Apply: func(lines []bdd.Line, rng *rand.Rand) ([]bdd.Line, bool) {
				lines = cloneERLines(lines)
				idx := pickDefs(lines, 2)
				if len(idx) == 0 {
					return nil, false
				}
				ln := &lines[idx[rng.Intn(len(idx))]]
				j := 1 + rng.Intn(len(ln.Lits)-1)
				ln.Lits[0], ln.Lits[j] = ln.Lits[j], ln.Lits[0]
				return lines, true
			},
		},
	}
}

// InjectER applies the mutation to a parsed ER proof, returning a corrupted
// copy, or ok=false when the mutation does not apply. The empty-clause ID is
// recomputed: a mutation may remove the line it pointed at.
func InjectER(m ERMutation, p *bdd.Proof, seed int64) (*bdd.Proof, bool) {
	rng := rand.New(rand.NewSource(seed))
	lines, ok := m.Apply(p.Lines, rng)
	if !ok {
		return nil, false
	}
	mut := &bdd.Proof{
		NumVars:    p.NumVars,
		NumClauses: p.NumClauses,
		MaxVar:     p.MaxVar,
		Lines:      lines,
	}
	for _, ln := range lines {
		if !ln.Ext && len(ln.Lits) == 0 {
			mut.EmptyID = ln.ID
			break
		}
	}
	return mut, true
}

// ERByName returns the named ER mutation.
func ERByName(name string) (ERMutation, error) {
	for _, m := range ERAll() {
		if m.Name == name {
			return m, nil
		}
	}
	return ERMutation{}, fmt.Errorf("faults: unknown ER mutation %q", name)
}
