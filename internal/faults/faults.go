// Package faults injects the classes of solver bugs the paper's checker is
// designed to catch ("quite a few submitted SAT solvers were found to be
// buggy", §3). Each Mutation corrupts a recorded resolution trace the way a
// specific implementation bug would — a missed resolution step, a wrong
// antecedent, a bogus conflict claim — so tests and demos can verify that
// every checker rejects the proof and reports a useful diagnostic.
package faults

import (
	"fmt"
	"math/rand"

	"satcheck/internal/trace"
)

// Mutation is one fault-injection operator over an in-memory trace.
type Mutation struct {
	// Name identifies the fault class.
	Name string
	// Bug describes the solver bug this trace corruption models.
	Bug string
	// MustReject marks structural corruptions (missing records, dangling or
	// empty source lists) that every checker is guaranteed to reject on any
	// trace. Non-structural mutations can occasionally leave a still-valid
	// proof (e.g. a dropped minimization step merely weakens a clause), so
	// acceptance of those mutants is not by itself a checker bug.
	MustReject bool
	// Apply corrupts a copy of the events, returning the corrupted events
	// and whether the mutation was applicable to this trace.
	Apply func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool)
}

// clone deep-copies events so mutations never alias the input trace.
func clone(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	for i, ev := range events {
		out[i] = ev
		if ev.Sources != nil {
			out[i].Sources = append([]int(nil), ev.Sources...)
		}
	}
	return out
}

// pick returns the indices of events of the given kind.
func pick(events []trace.Event, kind trace.Kind) []int {
	var idx []int
	for i, ev := range events {
		if ev.Kind == kind {
			idx = append(idx, i)
		}
	}
	return idx
}

// All returns the full mutation catalogue.
func All() []Mutation {
	return []Mutation{
		{
			Name: "drop-resolution-step",
			Bug:  "conflict analysis forgets to record one antecedent it resolved with",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLearned)
				for _, tries := range rng.Perm(len(idx)) {
					ev := &events[idx[tries]]
					if len(ev.Sources) >= 3 {
						k := 1 + rng.Intn(len(ev.Sources)-1)
						ev.Sources = append(ev.Sources[:k], ev.Sources[k+1:]...)
						return events, true
					}
				}
				return nil, false
			},
		},
		{
			Name: "swap-resolution-order",
			Bug:  "conflict analysis records antecedents out of resolution order",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLearned)
				for _, tries := range rng.Perm(len(idx)) {
					ev := &events[idx[tries]]
					if len(ev.Sources) >= 3 {
						ev.Sources[0], ev.Sources[len(ev.Sources)-1] =
							ev.Sources[len(ev.Sources)-1], ev.Sources[0]
						return events, true
					}
				}
				return nil, false
			},
		},
		{
			Name: "wrong-source-id",
			Bug:  "clause ID bookkeeping is off by one when recording resolve sources",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLearned)
				if len(idx) == 0 {
					return nil, false
				}
				ev := &events[idx[rng.Intn(len(idx))]]
				k := rng.Intn(len(ev.Sources))
				if ev.Sources[k] == 0 {
					ev.Sources[k]++
				} else {
					ev.Sources[k]--
				}
				return events, true
			},
		},
		{
			Name:       "drop-learned-clause",
			Bug:        "a learned clause is added to the database without being traced",
			MustReject: true,
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLearned)
				if len(idx) < 2 {
					return nil, false
				}
				// Drop one learned record (not the last: its ID gap is then
				// guaranteed to be observed by the consecutive-ID check or a
				// dangling reference).
				k := idx[rng.Intn(len(idx)-1)]
				return append(events[:k], events[k+1:]...), true
			},
		},
		{
			Name: "wrong-antecedent",
			Bug:  "the level-0 stage records the wrong antecedent clause for a variable",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLevelZero)
				if len(idx) == 0 {
					return nil, false
				}
				ev := &events[idx[rng.Intn(len(idx))]]
				if ev.Ante == 0 {
					ev.Ante++
				} else {
					ev.Ante--
				}
				return events, true
			},
		},
		{
			Name: "flip-level0-value",
			Bug:  "the level-0 stage records a variable with the wrong polarity",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLevelZero)
				if len(idx) == 0 {
					return nil, false
				}
				ev := &events[idx[rng.Intn(len(idx))]]
				ev.Value = !ev.Value
				return events, true
			},
		},
		{
			Name: "bogus-final-conflict",
			Bug:  "the solver reports a clause that is not actually conflicting at level 0",
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindFinalConflict)
				if len(idx) == 0 {
					return nil, false
				}
				ev := &events[idx[0]]
				if ev.ID == 0 {
					ev.ID++
				} else {
					ev.ID--
				}
				return events, true
			},
		},
		{
			Name:       "truncated-trace",
			Bug:        "the solver crashes (or buffers are lost) before the final conflict is written",
			MustReject: true,
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindFinalConflict)
				if len(idx) == 0 {
					return nil, false
				}
				k := idx[0]
				return append(events[:k], events[k+1:]...), true
			},
		},
		{
			Name:       "sourceless-learned-clause",
			Bug:        "a learned clause is traced with an empty resolve-source list",
			MustReject: true,
			Apply: func(events []trace.Event, rng *rand.Rand) ([]trace.Event, bool) {
				events = clone(events)
				idx := pick(events, trace.KindLearned)
				if len(idx) == 0 {
					return nil, false
				}
				events[idx[rng.Intn(len(idx))]].Sources = nil
				return events, true
			},
		},
	}
}

// Inject applies the mutation to a recorded trace, returning a corrupted
// MemoryTrace, or ok=false when the mutation does not apply (e.g. no learned
// clause has enough sources).
func Inject(m Mutation, tr *trace.MemoryTrace, seed int64) (*trace.MemoryTrace, bool) {
	rng := rand.New(rand.NewSource(seed))
	events, ok := m.Apply(tr.Events, rng)
	if !ok {
		return nil, false
	}
	return &trace.MemoryTrace{Events: events}, true
}

// ByName returns the named mutation.
func ByName(name string) (Mutation, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mutation{}, fmt.Errorf("faults: unknown mutation %q", name)
}
