package ooc

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"

	"satcheck/internal/drat"
	"satcheck/internal/ooc/mmapio"
)

// PathSource is implemented by proof sources that are backed by a file on
// disk. The out-of-core checker mmaps such sources directly instead of
// streaming them through a copy.
type PathSource interface {
	ProofPath() string
}

var gzipMagic = []byte{0x1f, 0x8b}

// openProof materializes a proof source as a flat read-only byte view the
// window passes can re-scan at arbitrary offsets:
//
//   - file-backed sources are mmap'd (zero-copy, pages shared with the OS
//     cache; heap fallback where mmap is unavailable),
//   - in-memory sources are used as-is,
//   - anything else (server spools, pipes) streams into an unlinked temp
//     file which is then mmap'd.
//
// Gzip input is recognized by magic, decompressed once into a temp file,
// and the decompressed file mmap'd — the multi-pass scans need random
// access that a gzip stream cannot provide.
func openProof(src drat.Source, tempDir string) ([]byte, func(), error) {
	path := ""
	switch s := src.(type) {
	case drat.FileSource:
		path = string(s)
	case PathSource:
		path = s.ProofPath()
	case drat.BytesSource:
		if len(s) >= 2 && bytes.Equal([]byte(s[:2]), gzipMagic) {
			return gunzipToMapped(bytes.NewReader(s), tempDir)
		}
		return []byte(s), func() {}, nil
	}
	if path != "" {
		d, err := mmapio.Open(path)
		if err != nil {
			return nil, nil, err
		}
		b := d.Bytes()
		if len(b) >= 2 && bytes.Equal(b[:2], gzipMagic) {
			defer d.Close()
			return gunzipToMapped(bytes.NewReader(b), tempDir)
		}
		return b, func() { d.Close() }, nil
	}
	rc, err := src.Open()
	if err != nil {
		return nil, nil, err
	}
	defer rc.Close()
	br := newSniffReader(rc)
	head, err := br.peek2()
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if len(head) >= 2 && bytes.Equal(head, gzipMagic) {
		return gunzipToMapped(br, tempDir)
	}
	return spoolToMapped(br, tempDir)
}

// sniffReader lets openProof peek at the first two bytes of an arbitrary
// stream without a bufio allocation sized for the whole transfer.
type sniffReader struct {
	r    io.Reader
	head []byte
}

func newSniffReader(r io.Reader) *sniffReader { return &sniffReader{r: r} }

func (s *sniffReader) peek2() ([]byte, error) {
	buf := make([]byte, 2)
	n, err := io.ReadFull(s.r, buf)
	s.head = buf[:n]
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	return s.head, err
}

func (s *sniffReader) Read(p []byte) (int, error) {
	if len(s.head) > 0 {
		n := copy(p, s.head)
		s.head = s.head[n:]
		return n, nil
	}
	return s.r.Read(p)
}

func gunzipToMapped(r io.Reader, tempDir string) ([]byte, func(), error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	defer zr.Close()
	return spoolToMapped(zr, tempDir)
}

// spoolToMapped copies r into a temp file, unlinks it (the mapping keeps
// the inode alive), and returns the mmap'd view.
func spoolToMapped(r io.Reader, tempDir string) ([]byte, func(), error) {
	f, err := os.CreateTemp(tempDir, "ooc-proof-*")
	if err != nil {
		return nil, nil, err
	}
	name := f.Name()
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		os.Remove(name)
		return nil, nil, err
	}
	d, err := mmapio.FromFile(f)
	f.Close()
	os.Remove(name)
	if err != nil {
		return nil, nil, err
	}
	return d.Bytes(), func() { d.Close() }, nil
}
