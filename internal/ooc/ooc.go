// Package ooc checks proofs out of core: instead of holding the whole
// clause database in memory, it partitions the proof into sequential
// windows sized to a byte budget and runs the trusted kernel
// (internal/kernel) once per window over a bounded working set — Chen's
// window-shifting idea applied to hint-following LRAT checking. Learned
// clauses that later windows reference are spilled to a checksummed disk
// index when their window retires and re-imported on demand, so peak
// memory is governed by Options.MemBudgetBytes rather than proof size.
//
// Soundness is inherited, not re-implemented: every window is verified by
// the same kernel the in-memory path uses, over a window-local formula
// built so the kernel's verdict on the window equals the in-memory
// verdict on those lines:
//
//   - live clauses the window references are imported verbatim (originals
//     from the formula, learned clauses from the spill index);
//   - references to dead or unknown clauses become tombstones — empty
//     clauses deleted before the window runs — so bad hints and deletions
//     fail with exactly the in-memory diagnostics;
//   - a poison clause containing every negated pivot of the window's
//     additions is kept live, so a lemma that falls through RUP into a RAT
//     check can never be vacuously accepted against the partial database:
//     the poison clause is an uncoverable candidate and the kernel reports
//     ErrMissingCandidates, which this package rewrites into a fail-closed
//     rejection. Out-of-core checking is therefore RUP-only: it accepts a
//     strict subset of what the kernel accepts and rejects everything the
//     kernel rejects.
//
// An accepted proof reports the same statistics and the same unsat core as
// the unconstrained kernel (the core is recomputed by an identical
// backward hint-closure pass over the windows).
package ooc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/kernel"
	"satcheck/internal/kernelcheck"
	"satcheck/internal/trace"
)

// DefaultMemBudgetBytes is the window-planning budget when
// Options.MemBudgetBytes is zero.
const DefaultMemBudgetBytes = 256 << 20

// minWindowWords floors the per-window parse budget so progress is always
// possible: a budget too small for even one line still advances one line
// per window (and the resident-state check has already rejected budgets
// the metadata alone cannot fit).
const minWindowWords = 1 << 12

const noStep = -1

// Clause liveness, tracked globally across windows by clause ID.
const (
	stNone uint8 = iota // never added (or beyond the proof's ID space)
	stLive
	stDead
)

// window is one contiguous run of proof lines, re-parsed from the mapped
// proof bytes each time it is needed.
type window struct {
	start int64 // byte offset of the first line
	ops   int
}

// CheckLRAT verifies an LRAT proof of f out of core. File-backed sources
// are mmap'd; everything else is spooled to a temp file first (the window
// passes need random access).
func CheckLRAT(f *cnf.Formula, src drat.Source, opts checker.Options) (*checker.Result, error) {
	data, cleanup, err := openProof(src, opts.TempDir)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	defer cleanup()
	return checkData(f, data, opts)
}

// CheckDRAT verifies a DRUP/DRAT proof out of core: the untrusted forward
// annotator converts it to hinted LRAT in memory (annotation is not the
// trusted or memory-bounded part), the hinted proof is written to a temp
// file, and the windowed kernel verifies that file under the budget.
func CheckDRAT(f *cnf.Formula, src drat.Source, opts checker.Options) (*checker.Result, error) {
	proof, err := drat.Load(src)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	_, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	return CheckLines(f, lines, opts)
}

// CheckTrace verifies a native solver trace out of core: TraceCheck
// export plus forward annotation produce hinted LRAT lines (untrusted,
// in-memory), which the windowed kernel then verifies under the budget.
func CheckTrace(f *cnf.Formula, src trace.Source, opts checker.Options) (*checker.Result, error) {
	lines, err := kernelcheck.TraceLRATLines(f, src, opts)
	if err != nil {
		return nil, err
	}
	return CheckLines(f, lines, opts)
}

// CheckLines verifies already-annotated LRAT lines out of core by
// round-tripping them through a spooled temp file (the windowed checker
// wants a flat byte view it can re-scan, and the spool is reclaimed
// before checking starts).
func CheckLines(f *cnf.Formula, lines []drat.LRATLine, opts checker.Options) (*checker.Result, error) {
	tmp, err := os.CreateTemp(opts.TempDir, "ooc-lrat-*")
	if err != nil {
		return nil, err
	}
	name := tmp.Name()
	defer os.Remove(name)
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := drat.WriteLines(bw, lines); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	return CheckLRAT(f, drat.FileSource(name), opts)
}

func checkData(f *cnf.Formula, data []byte, opts checker.Options) (*checker.Result, error) {
	budget := opts.MemBudgetBytes
	if budget <= 0 {
		budget = DefaultMemBudgetBytes
	}
	r := &run{f: f, opts: opts, data: data, budgetWords: budget / 4}
	defer func() {
		if r.spill != nil {
			r.spill.Close()
		}
	}()
	return r.check()
}

// run is the state of one out-of-core check.
type run struct {
	f    *cnf.Formula
	opts checker.Options
	data []byte

	// Flattened, normalized original formula (kernelcheck.flatten's form).
	fLits   []int32
	fOff    []int32
	nOrig   int32
	fMaxVar int // widest formula variable, pre-31-bit-guard
	numVars int32

	budgetWords int64
	capWords    int64

	// Plan (pass A).
	windows  []window
	nAdds    int
	maxAddID int32
	pMaxVar  int32
	idSpace  int32

	// Global clause state across windows, indexed by clause ID.
	lastRef  []int32 // last window index referencing the ID, -1 if none
	status   []uint8
	spillRef []int64 // spill ref + 1; 0 = not spilled

	residentWords int64
	peakWords     int64

	spill *spillIndex
	ck    kernel.Checker
	kf    kernel.Formula
	kp    kernel.Proof

	// Scratch, reused across windows.
	buf     opBuf
	scratch opBuf
	refs    []int32
	spl     []int32

	// Current-window translation state (local kernel IDs → global IDs).
	curImports  []int32
	curTombs    []int32
	curWinAdds  []int32
	curDelLines []int32
	curPoison   []int32
	curNImp     int32
	curNTomb    int32
	curLocal    int32 // local original count (imports + tombs + poison)
	curDelBase  int32

	statBuilt   int
	statSteps   int64
	statWindows int
}

func (r *run) check() (*checker.Result, error) {
	r.flattenFormula()
	if err := r.validate(); err != nil {
		return nil, err
	}
	if err := r.budgetPlan(); err != nil {
		return nil, err
	}
	if err := r.planWindows(); err != nil {
		return nil, err
	}
	return r.checkWindows()
}

// flattenFormula mirrors the kernel bridge: original clauses normalized
// (sorted, duplicate-free), literals in the kernel's encoding.
func (r *run) flattenFormula() {
	maxVar := r.f.NumVars
	var norm cnf.Clause
	r.fOff = append(r.fOff[:0], 0)
	r.fLits = r.fLits[:0]
	for _, c := range r.f.Clauses {
		norm = append(norm[:0], c...)
		w, _ := norm.Normalize()
		for _, l := range w {
			if int(l.Var()) > maxVar {
				maxVar = int(l.Var())
			}
			r.fLits = append(r.fLits, int32(l))
		}
		r.fOff = append(r.fOff, int32(len(r.fLits)))
	}
	r.nOrig = int32(len(r.f.Clauses))
	r.fMaxVar = maxVar
}

func (r *run) poll() error {
	if r.opts.Interrupt == nil {
		return nil
	}
	return r.opts.Interrupt()
}

func parseReject(err error) error {
	return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
}

// validate is pass A part 1: a full streaming parse that rejects malformed
// proofs up front (the in-memory path parses before checking, so a syntax
// error anywhere in the file rejects the proof there too) and gathers the
// sizes the budget arithmetic needs.
func (r *run) validate() error {
	s := newScanner(r.data, 0)
	maxAddID := r.nOrig
	n := 0
	for {
		r.scratch.reset()
		err := s.scanOp(&r.scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return parseReject(err)
		}
		if n++; n%4096 == 0 {
			if err := r.poll(); err != nil {
				return err
			}
		}
		op := &r.scratch.ops[0]
		if op.del {
			continue
		}
		r.nAdds++
		if op.id > maxAddID {
			maxAddID = op.id
		}
		for _, l := range r.scratch.lits {
			if v := l >> 1; v > r.pMaxVar {
				r.pMaxVar = v
			}
		}
	}
	r.maxAddID = maxAddID
	if r.fMaxVar > (math.MaxInt32-2)/2 || int(r.pMaxVar) > (math.MaxInt32-2)/2 {
		return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep,
			Detail: "variable range exceeds the kernel's 31-bit literal space"}
	}
	r.numVars = int32(r.fMaxVar)
	if r.pMaxVar > r.numVars {
		r.numVars = r.pMaxVar
	}
	return nil
}

// budgetPlan turns the byte budget into a window word cap. Resident state —
// per-ID metadata, the flattened formula, and the kernel's variable-indexed
// arrays — must fit the budget outright; what remains is split so one
// window's parse buffers, imports, and kernel copy (plus slack for the
// kernel's dense index) stay inside it.
func (r *run) budgetPlan() error {
	idSpace := int64(r.nOrig) + 1
	if int64(r.maxAddID)+1 > idSpace {
		idSpace = int64(r.maxAddID) + 1
	}
	metaWords := idSpace + // lastRef (int32)
		2*idSpace + // spillRef (int64)
		(idSpace+3)/4 + // status (uint8)
		(idSpace+31)/32 // core mark bitset
	formulaWords := int64(len(r.fLits) + len(r.fOff))
	fixedWords := 8 * (int64(r.numVars) + 2) // kernel val/trail/occ heads
	r.residentWords = metaWords + formulaWords + fixedWords
	if r.residentWords > r.budgetWords {
		return &checker.CheckError{Kind: checker.FailMemoryLimit, ClauseID: -1, Step: noStep,
			Detail: fmt.Sprintf("out-of-core resident state needs %d words, over the %d-word budget (raise -mem-budget)",
				r.residentWords, r.budgetWords)}
	}
	// A window's footprint is its parse buffers plus its imports plus the
	// kernel's copy of both; divide the headroom by six so the hard
	// per-window ceiling below has slack to spare.
	r.capWords = (r.budgetWords - r.residentWords) / 6
	if r.capWords < minWindowWords {
		r.capWords = minWindowWords
	}
	r.idSpace = int32(idSpace)
	r.lastRef = make([]int32, idSpace)
	for i := range r.lastRef {
		r.lastRef[i] = -1
	}
	r.status = make([]uint8, idSpace)
	for id := int32(1); id <= r.nOrig; id++ {
		r.status[id] = stLive
	}
	r.spillRef = make([]int64, idSpace)
	return nil
}

// planWindows is pass A part 2: a second streaming scan that cuts the
// proof into windows at the word cap and records, per clause ID, the last
// window that references it (hint or deletion) — the spill criterion.
func (r *run) planWindows() error {
	s := newScanner(r.data, 0)
	var w window
	var words int64
	n := 0
	for {
		off := s.offset()
		r.scratch.reset()
		err := s.scanOp(&r.scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			return parseReject(err)
		}
		if n++; n%4096 == 0 {
			if err := r.poll(); err != nil {
				return err
			}
		}
		opW := r.scratch.words()
		if w.ops > 0 && words+opW > r.capWords {
			r.windows = append(r.windows, w)
			w = window{start: off}
			words = 0
		}
		w.ops++
		words += opW
		wi := int32(len(r.windows))
		op := &r.scratch.ops[0]
		if op.del {
			for _, d := range r.scratch.dels {
				if d < r.idSpace {
					r.lastRef[d] = wi
				}
			}
			continue
		}
		for _, h := range r.scratch.hints {
			if h < 0 {
				h = -h
			}
			if h < r.idSpace {
				r.lastRef[h] = wi
			}
		}
	}
	if w.ops > 0 {
		r.windows = append(r.windows, w)
	}
	return nil
}

func (r *run) checkWindows() (*checker.Result, error) {
	sp, err := newSpillIndex(r.opts.TempDir)
	if err != nil {
		return nil, err
	}
	r.spill = sp
	lastID := r.nOrig
	for wi := range r.windows {
		res, done, err := r.checkWindow(wi, &lastID)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}
	return nil, &checker.CheckError{Kind: checker.FailNotEmpty, ClauseID: -1, Step: noStep,
		Detail: "LRAT proof ends without deriving the empty clause"}
}

// parseWindow re-reads window wi's lines from the mapped proof into r.buf.
func (r *run) parseWindow(wi int) error {
	w := r.windows[wi]
	r.buf.reset()
	s := newScanner(r.data, w.start)
	for i := 0; i < w.ops; i++ {
		if err := s.scanOp(&r.buf); err != nil {
			return fmt.Errorf("ooc: internal: window %d re-parse diverged: %w", wi, err)
		}
	}
	return nil
}

func (r *run) checkWindow(wi int, lastID *int32) (*checker.Result, bool, error) {
	if err := r.poll(); err != nil {
		return nil, false, err
	}
	if err := r.parseWindow(wi); err != nil {
		return nil, false, err
	}
	ops := r.buf.ops

	// The global ID-order invariant is checked here, against the last add
	// of the previous windows; lines from the first violation on are
	// withheld from the kernel so the violating line is reported only if
	// no earlier line fails (and is unreachable if an earlier line derives
	// the empty clause) — exactly the in-memory scan order.
	stop := len(ops)
	var stopErr error
	prev := *lastID
	for i := range ops {
		op := &ops[i]
		if op.del {
			continue
		}
		if op.id <= prev {
			stop = i
			stopErr = &checker.CheckError{Kind: checker.FailTrace, ClauseID: int(op.id), Step: noStep,
				Detail: fmt.Sprintf("clause IDs must increase (previous %d)", prev)}
			break
		}
		prev = op.id
	}

	// Collect the window's referenced IDs (hints, RAT candidates, deletion
	// targets) and its own additions.
	r.refs = r.refs[:0]
	r.curWinAdds = r.curWinAdds[:0]
	r.curPoison = r.curPoison[:0]
	for i := 0; i < stop; i++ {
		op := &ops[i]
		if op.del {
			r.refs = append(r.refs, r.buf.dels[op.delOff:op.delOff+op.delN]...)
			continue
		}
		r.curWinAdds = append(r.curWinAdds, op.id)
		if op.litN > 0 {
			r.curPoison = append(r.curPoison, r.buf.lits[op.litOff]^1)
		}
		for _, h := range r.buf.hints[op.hintOff : op.hintOff+op.hintN] {
			if h < 0 {
				h = -h
			}
			r.refs = append(r.refs, h)
		}
	}
	slices.Sort(r.refs)
	r.refs = slices.Compact(r.refs)
	slices.Sort(r.curPoison)
	r.curPoison = slices.Compact(r.curPoison)

	// Split references into live imports and tombstones.
	r.curImports = r.curImports[:0]
	r.curTombs = r.curTombs[:0]
	for _, ref := range r.refs {
		if _, own := slices.BinarySearch(r.curWinAdds, ref); own {
			continue
		}
		if ref < r.idSpace && r.status[ref] == stLive {
			r.curImports = append(r.curImports, ref)
		} else {
			r.curTombs = append(r.curTombs, ref)
		}
	}

	// Window-local formula: imports, then tombstones, then the poison
	// clause, numbered 1..curLocal.
	kf := &r.kf
	kf.Lits = kf.Lits[:0]
	kf.Off = append(kf.Off[:0], 0)
	for _, id := range r.curImports {
		if id <= r.nOrig {
			kf.Lits = append(kf.Lits, r.fLits[r.fOff[id-1]:r.fOff[id]]...)
		} else {
			ref := r.spillRef[id]
			if ref == 0 {
				return nil, false, fmt.Errorf("ooc: internal: clause %d live but never spilled", id)
			}
			lits, err := r.spill.get(ref-1, id, r.spl)
			if err != nil {
				return nil, false, spillReject(err)
			}
			r.spl = lits
			kf.Lits = append(kf.Lits, lits...)
		}
		kf.Off = append(kf.Off, int32(len(kf.Lits)))
	}
	for range r.curTombs {
		kf.Off = append(kf.Off, int32(len(kf.Lits)))
	}
	kf.Lits = append(kf.Lits, r.curPoison...)
	kf.Off = append(kf.Off, int32(len(kf.Lits)))
	kf.NumVars = r.numVars
	r.curNImp = int32(len(r.curImports))
	r.curNTomb = int32(len(r.curTombs))
	r.curLocal = r.curNImp + r.curNTomb + 1
	r.curDelBase = r.curLocal + int32(len(r.curWinAdds)) + 1

	// Window-local proof: delete the tombstones first (so stale references
	// hit "not live"/"unknown clause" exactly as in memory), then the
	// window's lines with IDs and references renumbered into local space.
	kp := &r.kp
	kp.Ops = kp.Ops[:0]
	kp.Lits = kp.Lits[:0]
	kp.Hints = kp.Hints[:0]
	kp.Dels = kp.Dels[:0]
	kp.NumAdds = 0
	kp.MaxVar = r.numVars
	r.curDelLines = r.curDelLines[:0]
	if r.curNTomb > 0 {
		op := kernel.Op{ID: r.curDelBase, Del: true, DelOff: 0, DelN: r.curNTomb}
		for j := int32(0); j < r.curNTomb; j++ {
			kp.Dels = append(kp.Dels, r.curNImp+1+j)
		}
		kp.Ops = append(kp.Ops, op)
		r.curDelLines = append(r.curDelLines, -1)
	}
	na := int32(0)
	for i := 0; i < stop; i++ {
		op := &ops[i]
		if op.del {
			kop := kernel.Op{ID: r.curDelBase + int32(len(r.curDelLines)), Del: true, DelOff: int32(len(kp.Dels))}
			for _, d := range r.buf.dels[op.delOff : op.delOff+op.delN] {
				kp.Dels = append(kp.Dels, r.mapRef(d))
			}
			kop.DelN = int32(len(kp.Dels)) - kop.DelOff
			kp.Ops = append(kp.Ops, kop)
			r.curDelLines = append(r.curDelLines, op.id)
			continue
		}
		kop := kernel.Op{ID: r.curLocal + 1 + na, LitOff: int32(len(kp.Lits)), HintOff: int32(len(kp.Hints))}
		kp.Lits = append(kp.Lits, r.buf.lits[op.litOff:op.litOff+op.litN]...)
		for _, h := range r.buf.hints[op.hintOff : op.hintOff+op.hintN] {
			neg := h < 0
			if neg {
				h = -h
			}
			m := r.mapRef(h)
			if neg {
				m = -m
			}
			kp.Hints = append(kp.Hints, m)
		}
		kop.LitN = int32(len(kp.Lits)) - kop.LitOff
		kop.HintN = int32(len(kp.Hints)) - kop.HintOff
		kp.Ops = append(kp.Ops, kop)
		kp.NumAdds++
		na++
	}

	kres, kerr := r.ck.Check(kf, kp, kernel.Options{Interrupt: r.opts.Interrupt})
	r.statSteps += r.ck.Steps()
	r.statWindows++

	winWords := r.buf.words() + int64(len(kf.Lits)) + 2*int64(len(kf.Off)) + r.ck.PeakMemWords()
	if total := r.residentWords + winWords; total > r.peakWords {
		r.peakWords = total
	}
	// The budget is a hard ceiling on the deterministic model, not just a
	// planning target: a window that outgrows it (oversized single line,
	// import-heavy hint pattern) aborts instead of quietly overshooting, so
	// PeakMemWords <= PeakMemBoundWords holds unconditionally.
	if r.peakWords > r.budgetWords {
		return nil, false, &checker.CheckError{Kind: checker.FailMemoryLimit, ClauseID: -1, Step: noStep,
			Detail: fmt.Sprintf("out-of-core window needs %d words, over the %d-word budget (raise -mem-budget)",
				r.peakWords, r.budgetWords)}
	}
	if r.opts.MemLimitWords > 0 && r.peakWords > r.opts.MemLimitWords {
		return nil, false, &checker.CheckError{Kind: checker.FailMemoryLimit, ClauseID: -1, Step: noStep,
			Detail: fmt.Sprintf("out-of-core memory model exceeded %d words (at %d)", r.opts.MemLimitWords, r.peakWords)}
	}

	if kerr == nil {
		// The kernel verified an empty clause inside this window.
		r.statBuilt += kres.Built
		finalIdx := -1
		adds := 0
		for i := 0; i < stop; i++ {
			if !ops[i].del {
				if adds++; adds == kres.Built {
					finalIdx = i
					break
				}
			}
		}
		if finalIdx < 0 {
			return nil, false, fmt.Errorf("ooc: internal: cannot locate final op in window %d", wi)
		}
		core, coreVars, err := r.markCore(wi, finalIdx)
		if err != nil {
			return nil, false, err
		}
		return &checker.Result{
			LearnedTotal:      r.nAdds,
			ClausesBuilt:      r.statBuilt,
			ResolutionSteps:   r.statSteps,
			PeakMemWords:      r.peakWords,
			PeakMemBoundWords: r.budgetWords,
			CoreClauses:       core,
			CoreVars:          coreVars,
			OOCWindows:        r.statWindows,
			SpilledClauses:    r.spill.clauses,
			SpilledBytes:      r.spill.bytes,
		}, true, nil
	}
	ke := &kernel.Error{}
	if !errors.As(kerr, &ke) {
		return nil, false, kerr // Options.Interrupt error, verbatim
	}
	if ke.Code != kernel.ErrNotEmpty {
		return nil, false, r.translate(ke)
	}
	// Window exhausted without an empty clause: every line the kernel saw
	// verified. Surface a deferred ordering error now, else retire the
	// window into global state and move on.
	if stopErr != nil {
		return nil, false, stopErr
	}
	r.statBuilt += kp.NumAdds
	if err := r.retire(wi, stop, lastID); err != nil {
		return nil, false, err
	}
	return nil, false, nil
}

// mapRef renumbers a global clause reference into the current window's
// local ID space. Every reference was classified above, so exactly one
// of the three searches hits.
func (r *run) mapRef(ref int32) int32 {
	if i, ok := slices.BinarySearch(r.curWinAdds, ref); ok {
		return r.curLocal + 1 + int32(i)
	}
	if i, ok := slices.BinarySearch(r.curImports, ref); ok {
		return 1 + int32(i)
	}
	i, _ := slices.BinarySearch(r.curTombs, ref)
	return r.curNImp + 1 + int32(i)
}

// localToGlobal inverts mapRef for error reporting (plus deletion-line and
// poison IDs, which have no global identity and map to -1).
func (r *run) localToGlobal(v int32) int32 {
	switch {
	case v <= 0:
		return v
	case v <= r.curNImp:
		return r.curImports[v-1]
	case v < r.curLocal:
		return r.curTombs[v-r.curNImp-1]
	case v == r.curLocal:
		return -1 // poison
	case v < r.curDelBase:
		return r.curWinAdds[v-r.curLocal-1]
	default:
		if j := v - r.curDelBase; int(j) < len(r.curDelLines) {
			return r.curDelLines[j]
		}
		return -1
	}
}

// translate rewrites a window-local kernel rejection into the global
// diagnostics of the in-memory path. ErrMissingCandidates is the one
// deliberate divergence: with the poison clause live it fires for every
// RAT lemma the RUP prefix does not already discharge, and is reported as
// the out-of-core fail-closed rejection rather than a candidate list that
// would name the poison clause.
func (r *run) translate(ke *kernel.Error) error {
	if ke.Code == kernel.ErrMissingCandidates {
		return &checker.CheckError{Kind: checker.FailHint, ClauseID: int(r.localToGlobal(ke.Line)), Step: noStep,
			Detail: "RAT lemma cannot be verified out of core (candidate enumeration needs the full clause database; rerun with the in-memory kernel)"}
	}
	g := *ke
	g.Line = r.localToGlobal(ke.Line)
	g.Ref = r.localToGlobal(ke.Ref)
	g.IDs = nil
	return kernelcheck.TranslateKernelError(&g)
}

func spillReject(err error) error {
	var ec *errSpillCorrupt
	if errors.As(err, &ec) {
		return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Detail: ec.Error()}
	}
	return err
}

// retire folds a fully verified window into the global state: replay its
// additions and deletions onto the liveness map, then spill every addition
// that is still live and referenced by a later window.
func (r *run) retire(wi, stop int, lastID *int32) error {
	ops := r.buf.ops
	for i := 0; i < stop; i++ {
		op := &ops[i]
		if op.del {
			for _, d := range r.buf.dels[op.delOff : op.delOff+op.delN] {
				if d < r.idSpace {
					r.status[d] = stDead
				}
			}
			continue
		}
		r.status[op.id] = stLive
		*lastID = op.id
	}
	for i := 0; i < stop; i++ {
		op := &ops[i]
		if op.del || r.status[op.id] != stLive || r.lastRef[op.id] <= int32(wi) {
			continue
		}
		ref, err := r.spill.put(op.id, r.buf.lits[op.litOff:op.litOff+op.litN])
		if err != nil {
			return err
		}
		r.spillRef[op.id] = ref + 1
	}
	return r.spill.seal()
}

// markCore recomputes the kernel's backward hint closure across windows:
// mark the final line's hints, then walk every earlier addition in reverse
// proof order, expanding marked additions into their hints. The surviving
// marked originals are the unsat core — identical, clause for clause, to
// kernel.Result.Core on the unwindowed proof, because both walks visit the
// same additions in the same order with the same expansion rule.
func (r *run) markCore(finalWin, finalIdx int) ([]int, int, error) {
	marked := make([]uint64, (int(r.idSpace)+63)/64)
	mark := func(id int32) {
		if id > 0 && id < r.idSpace {
			marked[id>>6] |= 1 << (uint(id) & 63)
		}
	}
	isMarked := func(id int32) bool {
		return id > 0 && id < r.idSpace && marked[id>>6]&(1<<(uint(id)&63)) != 0
	}
	markHints := func(op *opRef) {
		for _, h := range r.buf.hints[op.hintOff : op.hintOff+op.hintN] {
			if h < 0 {
				h = -h
			}
			mark(h)
		}
	}
	walk := func(from int) {
		ops := r.buf.ops
		for i := from; i >= 0; i-- {
			op := &ops[i]
			if op.del || !isMarked(op.id) {
				continue
			}
			markHints(op)
		}
	}
	// r.buf still holds the final window.
	markHints(&r.buf.ops[finalIdx])
	walk(finalIdx - 1)
	for w := finalWin - 1; w >= 0; w-- {
		if err := r.poll(); err != nil {
			return nil, 0, err
		}
		if err := r.parseWindow(w); err != nil {
			return nil, 0, err
		}
		walk(len(r.buf.ops) - 1)
	}
	core := make([]int, 0, 16)
	seen := make([]bool, r.numVars+1)
	vars := 0
	for id := int32(1); id <= r.nOrig; id++ {
		if !isMarked(id) {
			continue
		}
		core = append(core, int(id-1))
		for _, l := range r.fLits[r.fOff[id-1]:r.fOff[id]] {
			if v := l >> 1; !seen[v] {
				seen[v] = true
				vars++
			}
		}
	}
	return core, vars, nil
}
