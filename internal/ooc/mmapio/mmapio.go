// Package mmapio is the zero-copy ingest layer of the out-of-core checker
// (internal/ooc): it maps proof files read-only into the address space so
// the window planner and the per-window parser read the same physical pages
// the page cache already holds, instead of allocating per-line buffers. On
// platforms (or filesystems) where mmap is unavailable the package falls
// back to a single ReadAll — same []byte contract, one allocation, so
// callers never branch on platform.
package mmapio

import (
	"io"
	"os"
)

// Data is a read-only view of a file's bytes, backed by an mmap'd region
// when the platform provides one and by a heap copy otherwise. Close
// releases the mapping; after Close the slice returned by Bytes must not
// be used.
type Data struct {
	b      []byte
	mapped bool
}

// Bytes returns the file contents. The slice is read-only: writing to a
// mapped region faults.
func (d *Data) Bytes() []byte { return d.b }

// Mapped reports whether the bytes are an mmap view (false: heap fallback).
func (d *Data) Mapped() bool { return d.mapped }

// Close releases the mapping (a no-op for the heap fallback).
func (d *Data) Close() error {
	if d == nil || !d.mapped {
		return nil
	}
	b := d.b
	d.b, d.mapped = nil, false
	return unmapFile(b)
}

// Open maps the named file read-only.
func Open(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return FromFile(f)
}

// FromFile maps an open file read-only. The mapping survives the caller
// closing f (the kernel keeps the pages alive until Close unmaps them);
// the heap fallback reads everything before returning.
func FromFile(f *os.File) (*Data, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Data{}, nil
	}
	if b, ok := mapFile(f, size); ok {
		return &Data{b: b, mapped: true}, nil
	}
	// ReadAll fallback: mmap unavailable (platform, filesystem, or an
	// oversized/odd file). Read from offset 0 regardless of the handle's
	// current position.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return &Data{b: b}, nil
}
