//go:build unix

package mmapio

import (
	"math"
	"os"
	"syscall"
)

// mapFile mmaps f read-only. ok=false falls back to ReadAll (FromFile).
func mapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 || size > math.MaxInt {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
