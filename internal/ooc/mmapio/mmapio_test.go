package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Bytes(), want) {
		t.Fatalf("mapped bytes differ: %d vs %d", len(d.Bytes()), len(want))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Double Close must be safe.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Bytes()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(d.Bytes()))
	}
	if d.Mapped() {
		t.Fatal("empty file should not claim a mapping")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

// TestFromFileIgnoresOffset pins the contract that FromFile reads from the
// start of the file even when the handle has been advanced (the fallback
// path seeks; the mmap path never looks at the offset).
func TestFromFileIgnoresOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := []byte("window-shifted verification")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(5, 0); err != nil {
		t.Fatal(err)
	}
	d, err := FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !bytes.Equal(d.Bytes(), want) {
		t.Fatalf("got %q, want %q", d.Bytes(), want)
	}
}
