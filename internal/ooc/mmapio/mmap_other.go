//go:build !unix

package mmapio

import "os"

// mapFile reports mmap unavailable; FromFile uses the ReadAll fallback.
func mapFile(_ *os.File, _ int64) ([]byte, bool) { return nil, false }

func unmapFile(_ []byte) error { return nil }
