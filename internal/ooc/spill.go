package ooc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The spill index is the disk half of window shifting: a learned clause
// whose last reference lies in a later window is written out when its
// window retires and re-read as an import when that later window runs.
// Layout follows internal/store's conventions — a schema-versioned
// directory, segments spooled under a temporary name and renamed into
// place only when complete, and every record checksummed so a torn or
// tampered segment fails closed instead of feeding the kernel bad clauses.
//
//	<tmp>/ooc-spill-*/v1/seg-000007.seg
//
// Segment format: "OOCS1\n" magic, then records of
//
//	uvarint(id) uvarint(nlits) uvarint(lit)... crc32(le, payload)
//
// A spill ref packs (segment, offset) into an int64: segment<<refSegShift | offset.
const (
	spillMagic     = "OOCS1\n"
	spillSchemaDir = "v1"
	refSegShift    = 40
	refOffMask     = (1 << refSegShift) - 1
	// maxSpillLits bounds a record's clause length during decode; anything
	// larger is corruption, not a clause this checker could have written.
	maxSpillLits = 1 << 28
)

// errSpillCorrupt marks integrity failures in the spill index. The checker
// converts it to a fail-closed rejection (never a pass).
type errSpillCorrupt struct{ detail string }

func (e *errSpillCorrupt) Error() string { return "ooc: spill index corrupt: " + e.detail }

type spillSeg struct {
	f    *os.File
	size int64
}

// spillIndex owns the spill directory for one check run.
type spillIndex struct {
	root    string
	dir     string
	segs    []spillSeg
	cur     *os.File // current spool, nil between windows
	curW    *bufio.Writer
	curOff  int64
	scratch []byte

	clauses int64
	bytes   int64
}

// afterSpillWindow is a test hook run after each segment is sealed, used to
// fault-inject corruption between the write and the read-back.
var afterSpillWindow func(segPath string)

func newSpillIndex(tempDir string) (*spillIndex, error) {
	root, err := os.MkdirTemp(tempDir, "ooc-spill-*")
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(root, spillSchemaDir)
	if err := os.Mkdir(dir, 0o755); err != nil {
		os.RemoveAll(root)
		return nil, err
	}
	return &spillIndex{root: root, dir: dir}, nil
}

// Close releases segment handles and deletes the spill directory.
func (sp *spillIndex) Close() error {
	if sp == nil {
		return nil
	}
	for _, s := range sp.segs {
		if s.f != nil {
			s.f.Close()
		}
	}
	sp.segs = nil
	if sp.cur != nil {
		sp.cur.Close()
		sp.cur = nil
	}
	return os.RemoveAll(sp.root)
}

func (sp *spillIndex) segPath(idx int, spool bool) string {
	ext := ".seg"
	if spool {
		ext = ".spool"
	}
	return filepath.Join(sp.dir, fmt.Sprintf("seg-%06d%s", idx, ext))
}

// put appends one clause to the current window's segment, opening the
// segment lazily, and returns its spill ref. lits are kernel-encoded.
func (sp *spillIndex) put(id int32, lits []int32) (int64, error) {
	if sp.cur == nil {
		f, err := os.Create(sp.segPath(len(sp.segs), true))
		if err != nil {
			return 0, err
		}
		sp.cur = f
		if sp.curW == nil {
			sp.curW = bufio.NewWriterSize(f, 1<<16)
		} else {
			sp.curW.Reset(f)
		}
		sp.curOff = 0
		if _, err := sp.curW.WriteString(spillMagic); err != nil {
			return 0, err
		}
		sp.curOff = int64(len(spillMagic))
	}
	need := 2*binary.MaxVarintLen32 + len(lits)*binary.MaxVarintLen32 + 4
	if cap(sp.scratch) < need {
		sp.scratch = make([]byte, need)
	}
	buf := sp.scratch[:0]
	buf = binary.AppendUvarint(buf, uint64(uint32(id)))
	buf = binary.AppendUvarint(buf, uint64(uint32(len(lits))))
	for _, l := range lits {
		buf = binary.AppendUvarint(buf, uint64(uint32(l)))
	}
	sum := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	if _, err := sp.curW.Write(buf); err != nil {
		return 0, err
	}
	ref := int64(len(sp.segs))<<refSegShift | sp.curOff
	sp.curOff += int64(len(buf))
	sp.clauses++
	sp.bytes += int64(len(buf))
	return ref, nil
}

// seal finishes the current window's segment: flush, rename the spool into
// place, and reopen it read-only for later windows. A window that spilled
// nothing leaves no segment behind and is a no-op.
func (sp *spillIndex) seal() error {
	if sp.cur == nil {
		return nil
	}
	idx := len(sp.segs)
	if err := sp.curW.Flush(); err != nil {
		return err
	}
	if err := sp.cur.Close(); err != nil {
		return err
	}
	sp.cur = nil
	final := sp.segPath(idx, false)
	if err := os.Rename(sp.segPath(idx, true), final); err != nil {
		return err
	}
	f, err := os.Open(final)
	if err != nil {
		return err
	}
	sp.segs = append(sp.segs, spillSeg{f: f, size: sp.curOff})
	if afterSpillWindow != nil {
		afterSpillWindow(final)
	}
	return nil
}

// crcByteReader feeds binary.ReadUvarint while accumulating the CRC of
// every byte consumed, so get can verify the record without buffering it.
type crcByteReader struct {
	r   *bufio.Reader
	crc uint32
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// get reads the clause spilled at ref back into dst (reused), verifying
// the stored id and checksum. Any mismatch is corruption and fails closed.
func (sp *spillIndex) get(ref int64, wantID int32, dst []int32) ([]int32, error) {
	seg := int(ref >> refSegShift)
	off := ref & refOffMask
	if seg < 0 || seg >= len(sp.segs) {
		return nil, &errSpillCorrupt{detail: fmt.Sprintf("ref to unknown segment %d", seg)}
	}
	s := sp.segs[seg]
	if off < int64(len(spillMagic)) || off >= s.size {
		return nil, &errSpillCorrupt{detail: fmt.Sprintf("ref offset %d out of segment bounds", off)}
	}
	// Verify the magic once per read: cheap, and catches a truncated or
	// rewritten segment even when the record itself happens to decode.
	var magic [len(spillMagic)]byte
	if _, err := s.f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != spillMagic {
		return nil, &errSpillCorrupt{detail: "bad segment magic"}
	}
	cr := &crcByteReader{r: bufio.NewReaderSize(io.NewSectionReader(s.f, off, s.size-off), 4096)}
	id64, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, &errSpillCorrupt{detail: "truncated record header"}
	}
	if int32(uint32(id64)) != wantID || id64 > uint64(^uint32(0)) {
		return nil, &errSpillCorrupt{detail: fmt.Sprintf("record id %d, expected %d", id64, wantID)}
	}
	n64, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, &errSpillCorrupt{detail: "truncated record length"}
	}
	if n64 > maxSpillLits {
		return nil, &errSpillCorrupt{detail: fmt.Sprintf("implausible clause length %d", n64)}
	}
	dst = dst[:0]
	for i := uint64(0); i < n64; i++ {
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, &errSpillCorrupt{detail: "truncated record literals"}
		}
		if v > uint64(^uint32(0)) {
			return nil, &errSpillCorrupt{detail: fmt.Sprintf("literal %d out of range", v)}
		}
		dst = append(dst, int32(uint32(v)))
	}
	want := cr.crc
	var sum [4]byte
	if _, err := io.ReadFull(cr.r, sum[:]); err != nil {
		return nil, &errSpillCorrupt{detail: "truncated record checksum"}
	}
	if binary.LittleEndian.Uint32(sum[:]) != want {
		return nil, &errSpillCorrupt{detail: fmt.Sprintf("checksum mismatch for clause %d", wantID)}
	}
	return dst, nil
}
