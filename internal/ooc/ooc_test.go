package ooc

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/kernelcheck"
)

// mkFormula builds a formula from DIMACS-style clause literal lists.
func mkFormula(nVars int, cls ...[]int) *cnf.Formula {
	f := &cnf.Formula{NumVars: nVars}
	for _, c := range cls {
		cl := make(cnf.Clause, len(c))
		for i, d := range c {
			cl[i] = cnf.LitFromDimacs(d)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// chainFormula is the 3-clause UNSAT base of the hand-built proofs:
//
//	1: (x1)   2: (-x1 x2)   3: (-x1 -x2)
func chainFormula() *cnf.Formula {
	return mkFormula(2, []int{1}, []int{-1, 2}, []int{-1, -2})
}

// chainProof builds an LRAT refutation of chainFormula with n filler
// lines between the first derived clause and the finish, every filler
// hinting back to clause 4 — so with a small budget clause 4 must be
// spilled at the first window boundary and reloaded by every later
// window.
//
//	4: (x2) from 1,2; fillers 5..n+4: (x2) from 4; n+5: (-x2) from 1,3;
//	n+6: empty from 4, n+5.
func chainProof(n int, extra ...string) string {
	var b strings.Builder
	b.WriteString("4 2 0 1 2 0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d 2 0 4 0\n", 5+i)
	}
	for _, line := range extra {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d -2 0 1 3 0\n", n+5)
	fmt.Fprintf(&b, "%d 0 4 %d 0\n", n+6, n+5)
	return b.String()
}

// testOpts returns small-budget options rooted in the test's temp dir.
func testOpts(t *testing.T, budget int64) checker.Options {
	t.Helper()
	return checker.Options{MemBudgetBytes: budget, TempDir: t.TempDir()}
}

// runBoth checks the same proof with the in-memory kernel (core enabled)
// and the out-of-core checker and returns both outcomes.
func runBoth(t *testing.T, f *cnf.Formula, proof string, budget int64) (kRes, oRes *checker.Result, kErr, oErr error) {
	t.Helper()
	src := drat.BytesSource(proof)
	kRes, kErr = kernelcheck.CheckLRATCore(f, src, checker.Options{})
	oRes, oErr = CheckLRAT(f, src, testOpts(t, budget))
	return
}

// wantSameVerdict requires verdicts — and, for rejections, the full
// diagnostic text — to be identical between the kernel and ooc.
func wantSameVerdict(t *testing.T, kErr, oErr error) {
	t.Helper()
	if (kErr == nil) != (oErr == nil) {
		t.Fatalf("verdicts diverge: kernel=%v ooc=%v", kErr, oErr)
	}
	if kErr != nil && kErr.Error() != oErr.Error() {
		t.Fatalf("diagnostics diverge:\n  kernel: %v\n  ooc:    %v", kErr, oErr)
	}
}

const tinyBudget = 64 << 10 // 16K words: forces a window every ~4K parse words

// TestSpillReloadAcrossWindows is the core out-of-core scenario: a clause
// learned in the first window is referenced by every later window, so it
// must be spilled once and re-imported repeatedly, with verdict, stats,
// and core identical to the in-memory kernel.
func TestSpillReloadAcrossWindows(t *testing.T) {
	f := chainFormula()
	proof := chainProof(2000)
	kRes, oRes, kErr, oErr := runBoth(t, f, proof, tinyBudget)
	wantSameVerdict(t, kErr, oErr)
	if kErr != nil {
		t.Fatalf("kernel rejected the chain proof: %v", kErr)
	}
	if oRes.OOCWindows < 3 {
		t.Fatalf("expected >=3 windows at a %d-byte budget, got %d", int(tinyBudget), oRes.OOCWindows)
	}
	if oRes.SpilledClauses < 1 || oRes.SpilledBytes <= 0 {
		t.Fatalf("no spill happened (clauses=%d bytes=%d); the scenario demands one", oRes.SpilledClauses, oRes.SpilledBytes)
	}
	if oRes.ClausesBuilt != kRes.ClausesBuilt || oRes.ResolutionSteps != kRes.ResolutionSteps {
		t.Fatalf("stats diverge: kernel %d/%d, ooc %d/%d",
			kRes.ClausesBuilt, kRes.ResolutionSteps, oRes.ClausesBuilt, oRes.ResolutionSteps)
	}
	if len(oRes.CoreClauses) != len(kRes.CoreClauses) {
		t.Fatalf("core sizes diverge: kernel %v, ooc %v", kRes.CoreClauses, oRes.CoreClauses)
	}
	for i := range kRes.CoreClauses {
		if kRes.CoreClauses[i] != oRes.CoreClauses[i] {
			t.Fatalf("cores diverge: kernel %v, ooc %v", kRes.CoreClauses, oRes.CoreClauses)
		}
	}
	if oRes.PeakMemWords > oRes.PeakMemBoundWords {
		t.Fatalf("model peak %d exceeds the budget bound %d", oRes.PeakMemWords, oRes.PeakMemBoundWords)
	}
}

// TestFileSourceMmapPath runs the same scenario through a file source,
// exercising the mmap ingest path end to end.
func TestFileSourceMmapPath(t *testing.T) {
	f := chainFormula()
	path := t.TempDir() + "/proof.lrat"
	if err := os.WriteFile(path, []byte(chainProof(2000)), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := CheckLRAT(f, drat.FileSource(path), testOpts(t, tinyBudget))
	if err != nil {
		t.Fatal(err)
	}
	if res.OOCWindows < 3 {
		t.Fatalf("expected >=3 windows, got %d", res.OOCWindows)
	}
}

// TestCrossWindowDeletion covers deletions whose target lives in an
// earlier window: a valid deletion must retire the clause globally (a
// later hint to it fails exactly like the kernel), and deleting it twice
// is the kernel's "deletion of unknown clause".
func TestCrossWindowDeletion(t *testing.T) {
	f := chainFormula()
	del := fmt.Sprintf("%d d 5 0", 2004)
	t.Run("valid", func(t *testing.T) {
		// Delete filler 5 (window 0) near the end; nothing references it
		// afterwards, so the proof still verifies.
		_, oRes, kErr, oErr := runBoth(t, f, chainProof(2000, del), tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr != nil {
			t.Fatalf("valid cross-window deletion rejected: %v", oErr)
		}
		if oRes.OOCWindows < 3 {
			t.Fatalf("deletion did not cross windows (windows=%d)", oRes.OOCWindows)
		}
	})
	t.Run("hint-after-delete", func(t *testing.T) {
		// A later lemma hinting the deleted clause must die with the
		// kernel's not-live diagnostic.
		bad := chainProof(2000, del, "2005 2 0 5 0")
		_, _, kErr, oErr := runBoth(t, f, bad, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr == nil {
			t.Fatal("hint to a deleted clause accepted")
		}
	})
	t.Run("double-delete", func(t *testing.T) {
		bad := chainProof(2000, del, fmt.Sprintf("%d d 5 0", 2005))
		_, _, kErr, oErr := runBoth(t, f, bad, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr == nil {
			t.Fatal("double deletion accepted")
		}
	})
}

// TestDegenerateWindows drives windows with unusual shapes: deletion-only
// stretches (a window with zero additions), an empty proof, and lines
// after the first verified empty clause (which must stay ignored).
func TestDegenerateWindows(t *testing.T) {
	f := chainFormula()
	t.Run("deletion-only-window", func(t *testing.T) {
		// 2000 fillers then 1999 single-ID deletion lines: the deletion run
		// spans whole windows on its own.
		var extra []string
		for i := 0; i < 1999; i++ {
			extra = append(extra, fmt.Sprintf("%d d %d 0", 2005+i, 5+i))
		}
		proof := chainProofWithID(2000, 2005+1999, extra)
		// 256KiB: the deletion run carries more per-window op state than the
		// chain proofs, and 64KiB trips the hard budget ceiling.
		_, oRes, kErr, oErr := runBoth(t, f, proof, 256<<10)
		wantSameVerdict(t, kErr, oErr)
		if oErr != nil {
			t.Fatalf("deletion-heavy proof rejected: %v", oErr)
		}
		if oRes.OOCWindows < 3 {
			t.Fatalf("expected many windows, got %d", oRes.OOCWindows)
		}
	})
	t.Run("empty-proof", func(t *testing.T) {
		_, _, kErr, oErr := runBoth(t, f, "", tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr == nil {
			t.Fatal("empty proof accepted")
		}
	})
	t.Run("lines-after-empty-ignored", func(t *testing.T) {
		// Semantically bogus lines after the verified empty clause are
		// never checked — by the kernel or out of core.
		proof := chainProof(2000) + "2007 2 0 424242 0\n"
		_, _, kErr, oErr := runBoth(t, f, proof, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr != nil {
			t.Fatalf("lines after the empty clause affected the verdict: %v", oErr)
		}
	})
}

// chainProofWithID is chainProof with the closing pair renumbered to start
// at finish (for proofs whose extras consume IDs).
func chainProofWithID(n, finish int, extra []string) string {
	var b strings.Builder
	b.WriteString("4 2 0 1 2 0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d 2 0 4 0\n", 5+i)
	}
	for _, line := range extra {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d -2 0 1 3 0\n", finish)
	fmt.Fprintf(&b, "%d 0 4 %d 0\n", finish+1, finish)
	return b.String()
}

// TestTruncatedProofMidWindow cuts the proof at several byte offsets; a
// parse error anywhere must reject the whole proof (the in-memory path
// parses fully before checking, and pass A reproduces that), with the
// same diagnostic.
func TestTruncatedProofMidWindow(t *testing.T) {
	f := chainFormula()
	full := chainProof(2000)
	for _, frac := range []float64{0.3, 0.5, 0.9, 0.999} {
		cut := full[:int(float64(len(full))*frac)]
		cut = strings.TrimSuffix(cut, "\n") // land mid-line more often than not
		_, _, kErr, oErr := runBoth(t, f, cut, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr == nil && kErr == nil {
			// A cut landing exactly between lines parses fine and then
			// fails as "ends without deriving the empty clause" — also a
			// rejection.
			t.Fatalf("truncated proof (%.0f%%) accepted", frac*100)
		}
	}
}

// TestCorruptSpillFailsClosed flips bytes in a sealed spill segment
// between write and read-back; the checker must reject (never accept, and
// never report a kernel-style hint failure that would misattribute the
// corruption to the proof).
func TestCorruptSpillFailsClosed(t *testing.T) {
	f := chainFormula()
	defer func() { afterSpillWindow = nil }()
	corrupted := false
	afterSpillWindow = func(segPath string) {
		if corrupted || !strings.HasSuffix(segPath, "seg-000000.seg") {
			return
		}
		b, err := os.ReadFile(segPath)
		if err != nil || len(b) <= len(spillMagic) {
			t.Fatalf("cannot corrupt %s: %v", segPath, err)
		}
		b[len(spillMagic)] ^= 0x55 // first record's id varint
		if err := os.WriteFile(segPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	_, err := CheckLRAT(f, drat.BytesSource(chainProof(2000)), testOpts(t, tinyBudget))
	if !corrupted {
		t.Fatal("fault injection never fired; the scenario did not spill")
	}
	if err == nil {
		t.Fatal("corrupt spill index accepted — the checker is not fail-closed")
	}
	var ce *checker.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("corruption surfaced as %T, want *CheckError: %v", err, err)
	}
	if !strings.Contains(ce.Error(), "spill index corrupt") {
		t.Fatalf("corruption misattributed: %v", ce)
	}
}

// TestRATFailsClosed pins the one documented divergence from the kernel:
// a RAT lemma the kernel accepts is rejected out of core, with a
// diagnostic saying why — never accepted, never misreported.
func TestRATFailsClosed(t *testing.T) {
	// (x1 x2), (-x1 x2), (-x2): adding (x1) is RAT on pivot x1 (sole
	// candidate -x1 x2 resolves to (x2 x2), refuted via clause 1).
	f := mkFormula(2, []int{1, 2}, []int{-1, 2}, []int{-2})
	proof := "4 1 0 -2 1 0\n5 0 3 4 2 0\n"
	if _, err := kernelcheck.CheckLRATCore(f, drat.BytesSource(proof), checker.Options{}); err != nil {
		t.Fatalf("kernel rejected the RAT proof the test depends on: %v", err)
	}
	_, err := CheckLRAT(f, drat.BytesSource(proof), testOpts(t, tinyBudget))
	if err == nil {
		t.Fatal("ooc accepted a RAT lemma; it must fail closed")
	}
	var ce *checker.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("RAT rejection is %T, want *CheckError: %v", err, err)
	}
	if ce.ClauseID != 4 || !strings.Contains(ce.Detail, "out of core") {
		t.Fatalf("unexpected RAT rejection: %+v", ce)
	}
}

// TestOrderViolationMatchesKernel pins the deferred-stop machinery: an ID
// that fails to increase — in a window far from the violation's
// references — reports the kernel's exact diagnostic, and an empty clause
// verified before the violation wins.
func TestOrderViolationMatchesKernel(t *testing.T) {
	f := chainFormula()
	t.Run("violation-reported", func(t *testing.T) {
		bad := chainProof(2000, "17 2 0 4 0") // 17 <= previous ID 2004
		_, _, kErr, oErr := runBoth(t, f, bad, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr == nil {
			t.Fatal("out-of-order ID accepted")
		}
	})
	t.Run("empty-before-violation-wins", func(t *testing.T) {
		proof := chainProof(2000) + "17 2 0 4 0\n"
		_, _, kErr, oErr := runBoth(t, f, proof, tinyBudget)
		wantSameVerdict(t, kErr, oErr)
		if oErr != nil {
			t.Fatalf("violation after the empty clause affected the verdict: %v", oErr)
		}
	})
}

// TestBadHintsMatchKernel sweeps the classic hint corruptions through both
// checkers at a multi-window budget; diagnostics must match byte for byte.
func TestBadHintsMatchKernel(t *testing.T) {
	f := chainFormula()
	cases := map[string]string{
		"hint-not-live":       "2004 2 0 77777 0",
		"hint-two-unassigned": "2004 1 2 0 2 0",
		"no-conflict":         "2004 -1 0 2 0",
		"unknown-delete":      "2004 d 88888 0",
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			bad := chainProofWithID(2000, 2010, []string{line})
			_, _, kErr, oErr := runBoth(t, f, bad, tinyBudget)
			wantSameVerdict(t, kErr, oErr)
			if oErr == nil {
				t.Fatalf("%s accepted", name)
			}
		})
	}
}
