package ooc

import (
	"fmt"
	"io"
	"math"

	"satcheck/internal/cnf"
)

// lratMaxVar mirrors internal/drat's variable cap: values beyond it are
// treated as garbage input, not a cause for a multi-gigabyte allocation.
// The tokenizer below reproduces the in-memory LRAT tokenizer's grammar and
// error messages exactly, so a proof rejected at parse time is rejected
// with the same diagnostic whichever checker sees it first.
const lratMaxVar = 1 << 28

// opRef is one parsed proof line in flat form, indexing into an opBuf's
// slabs (the window-local analogue of kernel.Op, before ID remapping).
type opRef struct {
	id             int32
	del            bool
	litOff, litN   int32
	hintOff, hintN int32
	delOff, delN   int32
}

// opBuf holds the flat parse of a run of proof lines. The window checker
// reuses one across windows; the planning scans reuse one per line.
type opBuf struct {
	ops   []opRef
	lits  []int32 // cnf.Lit encoding, copied verbatim into the kernel
	hints []int32 // signed: negative opens a RAT candidate group
	dels  []int32
}

func (b *opBuf) reset() {
	b.ops = b.ops[:0]
	b.lits = b.lits[:0]
	b.hints = b.hints[:0]
	b.dels = b.dels[:0]
}

// words is the flat parse size of the buffered ops in 4-byte words,
// including a fixed per-op overhead for the opRef and kernel.Op records.
func (b *opBuf) words() int64 {
	return int64(len(b.lits)) + int64(len(b.hints)) + int64(len(b.dels)) + opOverheadWords*int64(len(b.ops))
}

// opOverheadWords approximates the per-line bookkeeping (opRef + kernel.Op
// + ID maps) in the deterministic memory model.
const opOverheadWords = 16

// scanner tokenizes LRAT text straight off the mapped proof bytes —
// no per-line allocation, no intermediate reader. It can start at any op
// boundary recorded by a previous pass (window re-parsing).
type scanner struct {
	data []byte
	pos  int
	line int
}

func newScanner(data []byte, off int64) *scanner {
	return &scanner{data: data, pos: int(off), line: 1}
}

// offset reports the current byte position (an op boundary between scanOp
// calls).
func (s *scanner) offset() int64 { return int64(s.pos) }

type lratTok struct {
	val int
	isD bool
}

// next returns the next token, mirroring internal/drat's LRAT tokenizer:
// whitespace separated signed integers, 'd' markers, comments to end of
// line, values saturating past lratMaxVar*16.
func (s *scanner) next() (lratTok, error) {
	for {
		if s.pos >= len(s.data) {
			return lratTok{}, io.EOF
		}
		b := s.data[s.pos]
		s.pos++
		switch {
		case b == ' ' || b == '\t' || b == '\r':
			continue
		case b == '\n':
			s.line++
			continue
		case b == 'c':
			for {
				if s.pos >= len(s.data) {
					return lratTok{}, io.EOF
				}
				b = s.data[s.pos]
				s.pos++
				if b == '\n' {
					s.line++
					break
				}
			}
			continue
		case b == 'd':
			return lratTok{isD: true}, nil
		case b == '-' || (b >= '0' && b <= '9'):
			neg := b == '-'
			val := 0
			if !neg {
				val = int(b - '0')
			}
			digits := !neg
			for s.pos < len(s.data) {
				b = s.data[s.pos]
				if b < '0' || b > '9' {
					break
				}
				s.pos++
				digits = true
				if val <= lratMaxVar*16 {
					val = val*10 + int(b-'0')
				}
			}
			if !digits {
				return lratTok{}, fmt.Errorf("lrat: line %d: '-' without digits", s.line)
			}
			if neg {
				val = -val
			}
			return lratTok{val: val}, nil
		default:
			return lratTok{}, fmt.Errorf("lrat: line %d: unexpected byte %q", s.line, b)
		}
	}
}

// errIDRange matches the kernel bridge's 31-bit ID rejection.
func errIDRange(id int) error {
	return fmt.Errorf("clause ID %d exceeds the kernel's 31-bit ID space", id)
}

// scanOp parses one proof line (addition or deletion) into b, returning
// io.EOF at a clean end of input. Grammar and diagnostics follow
// drat.ParseLRAT; IDs and hints are additionally narrowed to the kernel's
// 31-bit ID space here, since the flat arrays are int32.
func (s *scanner) scanOp(b *opBuf) error {
	t, err := s.next()
	if err != nil {
		return err // io.EOF: clean end
	}
	if t.isD {
		return fmt.Errorf("lrat: line %d: 'd' where a clause ID was expected", s.line)
	}
	if t.val <= 0 {
		return fmt.Errorf("lrat: line %d: bad clause ID %d", s.line, t.val)
	}
	if t.val > math.MaxInt32 {
		return errIDRange(t.val)
	}
	op := opRef{id: int32(t.val)}
	t, err = s.next()
	if err != nil {
		return fmt.Errorf("lrat: line %d: truncated line: %w", s.line, err)
	}
	if t.isD {
		op.del = true
		op.delOff = int32(len(b.dels))
		for {
			t, err = s.next()
			if err != nil {
				return fmt.Errorf("lrat: line %d: truncated deletion: %w", s.line, err)
			}
			if t.isD {
				return fmt.Errorf("lrat: line %d: 'd' inside a deletion", s.line)
			}
			if t.val == 0 {
				break
			}
			if t.val < 0 {
				return fmt.Errorf("lrat: line %d: negative ID %d in deletion", s.line, t.val)
			}
			if t.val > math.MaxInt32 {
				return errIDRange(t.val)
			}
			b.dels = append(b.dels, int32(t.val))
		}
		op.delN = int32(len(b.dels)) - op.delOff
		b.ops = append(b.ops, op)
		return nil
	}
	op.litOff = int32(len(b.lits))
	for t.val != 0 {
		if t.isD {
			return fmt.Errorf("lrat: line %d: 'd' inside a clause", s.line)
		}
		if t.val > lratMaxVar || t.val < -lratMaxVar {
			return fmt.Errorf("lrat: line %d: variable out of range", s.line)
		}
		b.lits = append(b.lits, int32(cnf.LitFromDimacs(t.val)))
		t, err = s.next()
		if err != nil {
			return fmt.Errorf("lrat: line %d: truncated clause: %w", s.line, err)
		}
	}
	op.litN = int32(len(b.lits)) - op.litOff
	op.hintOff = int32(len(b.hints))
	for {
		t, err = s.next()
		if err != nil {
			return fmt.Errorf("lrat: line %d: truncated hints: %w", s.line, err)
		}
		if t.isD {
			return fmt.Errorf("lrat: line %d: 'd' inside hints", s.line)
		}
		if t.val == 0 {
			break
		}
		if t.val > math.MaxInt32 || t.val < -math.MaxInt32 {
			return errIDRange(t.val)
		}
		b.hints = append(b.hints, int32(t.val))
	}
	op.hintN = int32(len(b.hints)) - op.hintOff
	b.ops = append(b.ops, op)
	return nil
}
