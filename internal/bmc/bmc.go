// Package bmc implements bounded model checking with validated verdicts —
// the application (the paper's reference [2], Biere et al.) that made SAT
// solvers central to formal verification. A sequential circuit with a
// bad-state net is unrolled bound by bound; each bound's CNF is decided by
// the CDCL solver, and:
//
//   - UNSAT ("property holds through this bound") is proved by replaying
//     the resolution trace through the independent checker;
//   - SAT ("property violated") is validated by simulating the unrolled
//     circuit on the extracted counterexample inputs.
package bmc

import (
	"fmt"

	"satcheck/internal/checker"
	"satcheck/internal/circuit"
	"satcheck/internal/incremental"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// BoundResult is the validated outcome at one bound.
type BoundResult struct {
	// Bound is the number of transitions unrolled.
	Bound int
	// Holds is true when no bad state is reachable within Bound steps.
	Holds bool
	// ViolationStep is the first step whose bad net fires in the validated
	// counterexample (only when !Holds).
	ViolationStep int
	// Inputs is the counterexample input vector for the unrolled circuit
	// (only when !Holds); the layout follows the unrolled circuit's input
	// declaration order, i.e. frame by frame.
	Inputs []bool
	// SolverStats and CheckResult document the work; CheckResult is nil for
	// violated bounds.
	SolverStats solver.Stats
	CheckResult *checker.Result
}

// Options configures a run.
type Options struct {
	Solver solver.Options
	// Incremental makes Run reuse one persistent solver session across
	// bounds (see RunIncremental) instead of re-encoding and re-solving each
	// bound from scratch. Off by default.
	Incremental bool
	// Check selects the native checker validating UNSAT bounds in
	// incremental mode (default depth-first); the from-scratch path always
	// uses the breadth-first checker.
	Check incremental.CheckMethod
}

// CheckBound verifies the property at exactly the given bound.
func CheckBound(seq *circuit.Sequential, bound int, opts Options) (*BoundResult, error) {
	unrolled, bads, err := seq.Unroll(bound)
	if err != nil {
		return nil, err
	}
	enc := circuit.Encode(unrolled)
	enc.AssertAny(bads, true)

	s, err := solver.New(enc.F, opts.Solver)
	if err != nil {
		return nil, err
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	st, err := s.Solve()
	if err != nil {
		return nil, err
	}
	res := &BoundResult{Bound: bound, SolverStats: s.Stats()}
	switch st {
	case solver.StatusUnsat:
		cr, err := checker.BreadthFirst(enc.F, mt, checker.Options{})
		if err != nil {
			return nil, fmt.Errorf("bmc: bound %d: UNSAT claim failed validation: %w", bound, err)
		}
		res.Holds = true
		res.CheckResult = cr
		return res, nil
	case solver.StatusSat:
		inputs := enc.ExtractInputs(unrolled, s.Model())
		vals, err := unrolled.Eval(inputs)
		if err != nil {
			return nil, err
		}
		step := -1
		for i, b := range bads {
			if vals[b-1] {
				step = i
				break
			}
		}
		if step < 0 {
			return nil, fmt.Errorf("bmc: bound %d: SAT claim but simulation reaches no bad state", bound)
		}
		res.Holds = false
		res.ViolationStep = step
		res.Inputs = inputs
		return res, nil
	default:
		return nil, fmt.Errorf("bmc: bound %d: solver returned %v", bound, st)
	}
}

// Run checks bounds 1..maxBound in order, stopping early at the first
// violation. Every returned result is validated. With Options.Incremental it
// delegates to RunIncremental.
func Run(seq *circuit.Sequential, maxBound int, opts Options) ([]*BoundResult, error) {
	if opts.Incremental {
		return RunIncremental(seq, maxBound, opts)
	}
	if maxBound < 1 {
		return nil, fmt.Errorf("bmc: maxBound must be >= 1, got %d", maxBound)
	}
	var out []*BoundResult
	for k := 1; k <= maxBound; k++ {
		res, err := CheckBound(seq, k, opts)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if !res.Holds {
			break
		}
	}
	return out, nil
}
