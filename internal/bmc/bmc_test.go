package bmc

import (
	"testing"

	"satcheck/internal/circuit"
)

// counter returns a bits-wide enable-gated counter whose bad state is
// "value == target".
func counter(bits int, target uint64) *circuit.Sequential {
	c := circuit.New()
	q := c.InputBus("q", bits)
	en := c.Input("en")
	next := c.AddBit(q, en)
	bad := c.EqualBus(q, c.ConstBus(target, bits))
	regs := make([]circuit.Register, bits)
	for i := range regs {
		regs[i] = circuit.Register{Q: q[i], D: next[i], Init: false}
	}
	return &circuit.Sequential{Comb: c, Registers: regs, Bad: bad}
}

func TestRunFindsExactViolationBound(t *testing.T) {
	// Counter reaches 5 first at bound 5.
	seq := counter(4, 5)
	results, err := Run(seq, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d bounds, want 5 (stop at first violation)", len(results))
	}
	for _, r := range results[:4] {
		if !r.Holds {
			t.Errorf("bound %d: property should hold", r.Bound)
		}
		if r.CheckResult == nil {
			t.Errorf("bound %d: holding bound must carry a validated proof", r.Bound)
		}
	}
	last := results[4]
	if last.Holds {
		t.Fatal("bound 5: violation not found")
	}
	if last.ViolationStep != 5 {
		t.Errorf("violation at step %d, want 5", last.ViolationStep)
	}
	if last.Inputs == nil {
		t.Error("violated bound must carry the counterexample inputs")
	}
}

func TestRunAllBoundsHold(t *testing.T) {
	// Target 9 is unreachable within 6 steps.
	seq := counter(4, 9)
	results, err := Run(seq, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d bounds, want 6", len(results))
	}
	for _, r := range results {
		if !r.Holds {
			t.Errorf("bound %d: property should hold", r.Bound)
		}
	}
}

func TestCheckBoundDirect(t *testing.T) {
	seq := counter(3, 2)
	r, err := CheckBound(seq, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Holds {
		t.Error("value 2 unreachable in 1 step")
	}
	r, err = CheckBound(seq, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Holds {
		t.Error("value 2 reachable in 2 steps")
	}
}

func TestRunValidation(t *testing.T) {
	seq := counter(3, 2)
	if _, err := Run(seq, 0, Options{}); err == nil {
		t.Error("maxBound 0 accepted")
	}
	noBad := &circuit.Sequential{Comb: circuit.New()}
	if _, err := Run(noBad, 3, Options{}); err == nil {
		t.Error("sequential circuit without a bad net accepted")
	}
}
