package bmc

import (
	"testing"

	"satcheck/internal/circuit"
	"satcheck/internal/gen"
)

func TestUnrollIsPrefixStable(t *testing.T) {
	// The incremental encoder relies on Unroll(k+1) extending Unroll(k)'s
	// gate list verbatim; pin that contract here.
	seq := counter(4, 9)
	prev, _, err := seq.Unroll(1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 5; k++ {
		cur, _, err := seq.Unroll(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cur.Gates) <= len(prev.Gates) {
			t.Fatalf("bound %d: gate list did not grow", k)
		}
		for i, g := range prev.Gates {
			got := cur.Gates[i]
			if got.Kind != g.Kind || len(got.In) != len(g.In) {
				t.Fatalf("bound %d: gate %d changed shape", k, i)
			}
			for j := range g.In {
				if got.In[j] != g.In[j] {
					t.Fatalf("bound %d: gate %d fanin %d changed", k, i, j)
				}
			}
		}
		for i, s := range prev.Inputs {
			if cur.Inputs[i] != s {
				t.Fatalf("bound %d: input %d changed", k, i)
			}
		}
		prev = cur
	}
}

func TestRunIncrementalFindsExactViolationBound(t *testing.T) {
	seq := counter(4, 5)
	results, err := Run(seq, 10, Options{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d bounds, want 5 (stop at first violation)", len(results))
	}
	for _, r := range results[:4] {
		if !r.Holds {
			t.Errorf("bound %d: property should hold", r.Bound)
		}
		if r.CheckResult == nil {
			t.Errorf("bound %d: holding bound must carry a validated proof", r.Bound)
		}
	}
	last := results[4]
	if last.Holds {
		t.Fatal("bound 5: violation not found")
	}
	if last.ViolationStep != 5 {
		t.Errorf("violation at step %d, want 5", last.ViolationStep)
	}
	if last.Inputs == nil {
		t.Error("violated bound must carry the counterexample inputs")
	}
}

func TestRunIncrementalAgreesWithScratch(t *testing.T) {
	// Same verdict at every bound, on a holding instance and a violated one,
	// including the XOR-heavy shift-register family.
	seqs := []*circuit.Sequential{
		counter(4, 9), // holds through 6
		counter(3, 3), // violated at 3
		gen.BMCShiftRegisterSequential(4),
	}
	for si, seq := range seqs {
		scratch, err := Run(seq, 6, Options{})
		if err != nil {
			t.Fatalf("seq %d scratch: %v", si, err)
		}
		inc, err := Run(seq, 6, Options{Incremental: true})
		if err != nil {
			t.Fatalf("seq %d incremental: %v", si, err)
		}
		if len(scratch) != len(inc) {
			t.Fatalf("seq %d: scratch checked %d bounds, incremental %d", si, len(scratch), len(inc))
		}
		for i := range scratch {
			if scratch[i].Holds != inc[i].Holds {
				t.Errorf("seq %d bound %d: scratch holds=%v, incremental holds=%v",
					si, scratch[i].Bound, scratch[i].Holds, inc[i].Holds)
			}
			if !inc[i].Holds && scratch[i].ViolationStep != inc[i].ViolationStep {
				t.Errorf("seq %d bound %d: violation step %d vs %d",
					si, scratch[i].Bound, scratch[i].ViolationStep, inc[i].ViolationStep)
			}
		}
	}
}

func TestRunIncrementalValidation(t *testing.T) {
	seq := counter(3, 2)
	if _, err := RunIncremental(seq, 0, Options{}); err == nil {
		t.Error("maxBound 0 accepted")
	}
	noBad := &circuit.Sequential{Comb: circuit.New()}
	if _, err := RunIncremental(noBad, 3, Options{}); err == nil {
		t.Error("sequential circuit without a bad net accepted")
	}
}
