package bmc

import (
	"fmt"

	"satcheck/internal/circuit"
	"satcheck/internal/cnf"
	"satcheck/internal/incremental"
	"satcheck/internal/solver"
)

// RunIncremental is Run on one persistent validated solver session. Unrolling
// is prefix-stable — Unroll(k+1) extends Unroll(k)'s gate list with one more
// time frame — so each bound only encodes the new frame's gates into the
// session and the learned clauses of earlier bounds carry over. The standard
// one-shot encoding cannot be reused this way because it numbers XOR auxiliary
// variables after the gate block, which shifts between bounds; sessionEncoder
// instead allocates every variable (gate and auxiliary alike) from the
// session's allocator in encoding order, so bound k's variables keep their
// meaning at bound k+1.
//
// The per-bound property "some bad net of frames 0..k fires" is strictly
// stronger than the next bound's, so it cannot be a permanent clause. Each
// bound instead gets an activation literal a_k with the guard clause
// (¬a_k ∨ b_0 ∨ ... ∨ b_k) and is solved under the single assumption a_k;
// later bounds leave a_k unassumed, which lets the solver switch the guard
// off. UNSAT bounds are proof-checked through the session (the assumption
// enters the artifact as a unit clause); SAT bounds are validated by
// simulating the unrolled circuit on the extracted counterexample inputs,
// exactly as in the from-scratch path.
func RunIncremental(seq *circuit.Sequential, maxBound int, opts Options) ([]*BoundResult, error) {
	if maxBound < 1 {
		return nil, fmt.Errorf("bmc: maxBound must be >= 1, got %d", maxBound)
	}
	enc := newSessionEncoder(incremental.Options{Solver: opts.Solver, Check: opts.Check})
	var out []*BoundResult
	for k := 1; k <= maxBound; k++ {
		unrolled, bads, err := seq.Unroll(k)
		if err != nil {
			return out, err
		}
		if err := enc.extend(unrolled); err != nil {
			return out, err
		}
		act, err := enc.addGuard(bads)
		if err != nil {
			return out, err
		}
		st, err := enc.sess.SolveAssuming([]cnf.Lit{act})
		if err != nil {
			return out, fmt.Errorf("bmc: bound %d: %w", k, err)
		}
		res := &BoundResult{Bound: k, SolverStats: enc.sess.LastStats()}
		switch st {
		case solver.StatusUnsat:
			res.Holds = true
			res.CheckResult = enc.sess.CheckResult()
		case solver.StatusSat:
			inputs := enc.extractInputs(unrolled, enc.sess.Model())
			vals, err := unrolled.Eval(inputs)
			if err != nil {
				return out, err
			}
			step := -1
			for i, b := range bads {
				if vals[b-1] {
					step = i
					break
				}
			}
			if step < 0 {
				return out, fmt.Errorf("bmc: bound %d: SAT claim but simulation reaches no bad state", k)
			}
			res.Holds = false
			res.ViolationStep = step
			res.Inputs = inputs
		default:
			return out, fmt.Errorf("bmc: bound %d: solver returned %v", k, st)
		}
		out = append(out, res)
		if !res.Holds {
			break
		}
	}
	return out, nil
}

// sessionEncoder incrementally Tseitin-encodes a growing circuit into a
// validated session.
type sessionEncoder struct {
	sess *incremental.Session
	// vars[i] is the session variable of unrolled Signal i+1 (grows with the
	// circuit).
	vars []cnf.Var
	// encoded is how many gates of the unrolled circuit have clauses already.
	encoded int
	// lastKind is the kind of the last encoded gate, kept to spot-check that
	// the next bound's unrolling really extends the previous one.
	lastKind circuit.Kind
}

func newSessionEncoder(opts incremental.Options) *sessionEncoder {
	return &sessionEncoder{sess: incremental.NewSession(opts)}
}

func (e *sessionEncoder) lit(s circuit.Signal, value bool) cnf.Lit {
	return cnf.NewLit(e.vars[s-1], !value)
}

func (e *sessionEncoder) add(lits ...cnf.Lit) error {
	return e.sess.AddClause(cnf.Clause(lits))
}

// extend encodes gates [e.encoded, len(u.Gates)) of u, which must extend the
// previously encoded circuit (unrolling guarantees this; the gate kinds of
// the shared prefix are spot-checked).
func (e *sessionEncoder) extend(u *circuit.Circuit) error {
	if len(u.Gates) < e.encoded {
		return fmt.Errorf("bmc: unrolled circuit shrank from %d to %d gates", e.encoded, len(u.Gates))
	}
	if e.encoded > 0 && u.Gates[e.encoded-1].Kind != e.lastKind {
		return fmt.Errorf("bmc: unrolling is not prefix-stable at gate %d", e.encoded)
	}
	for i := e.encoded; i < len(u.Gates); i++ {
		g := u.Gates[i]
		e.vars = append(e.vars, e.sess.NewVar())
		out := cnf.PosLit(e.vars[i])
		var err error
		switch g.Kind {
		case circuit.KindInput:
			// Free variable: no clauses.
		case circuit.KindConst:
			if g.Value {
				err = e.add(out)
			} else {
				err = e.add(out.Neg())
			}
		case circuit.KindNot:
			a := cnf.PosLit(e.vars[g.In[0]-1])
			if err = e.add(out.Neg(), a.Neg()); err == nil {
				err = e.add(out, a)
			}
		case circuit.KindAnd:
			long := make([]cnf.Lit, 0, len(g.In)+1)
			long = append(long, out)
			for _, in := range g.In {
				a := cnf.PosLit(e.vars[in-1])
				if err = e.add(out.Neg(), a); err != nil {
					break
				}
				long = append(long, a.Neg())
			}
			if err == nil {
				err = e.add(long...)
			}
		case circuit.KindOr:
			long := make([]cnf.Lit, 0, len(g.In)+1)
			long = append(long, out.Neg())
			for _, in := range g.In {
				a := cnf.PosLit(e.vars[in-1])
				if err = e.add(out, a.Neg()); err != nil {
					break
				}
				long = append(long, a)
			}
			if err == nil {
				err = e.add(long...)
			}
		case circuit.KindXor:
			// Chained through fresh auxiliaries, as in circuit.Encode — but
			// the auxiliaries come from the session allocator, interleaved
			// with gate variables, so the numbering is stable across bounds.
			cur := cnf.PosLit(e.vars[g.In[0]-1])
			for k := 1; k < len(g.In); k++ {
				a := cnf.PosLit(e.vars[g.In[k]-1])
				t := out
				if k != len(g.In)-1 {
					t = cnf.PosLit(e.sess.NewVar())
				}
				if err = e.add(t.Neg(), cur, a); err != nil {
					break
				}
				if err = e.add(t.Neg(), cur.Neg(), a.Neg()); err != nil {
					break
				}
				if err = e.add(t, cur.Neg(), a); err != nil {
					break
				}
				if err = e.add(t, cur, a.Neg()); err != nil {
					break
				}
				cur = t
			}
		default:
			err = fmt.Errorf("bmc: cannot encode gate kind %v", g.Kind)
		}
		if err != nil {
			return err
		}
	}
	if len(u.Gates) > 0 {
		e.lastKind = u.Gates[len(u.Gates)-1].Kind
	}
	e.encoded = len(u.Gates)
	return nil
}

// addGuard adds the activation clause (¬a ∨ b_0 ∨ ... ∨ b_k) for this bound's
// bad nets and returns the assumption literal a.
func (e *sessionEncoder) addGuard(bads []circuit.Signal) (cnf.Lit, error) {
	act := cnf.PosLit(e.sess.NewVar())
	cl := make(cnf.Clause, 0, len(bads)+1)
	cl = append(cl, act.Neg())
	for _, b := range bads {
		cl = append(cl, e.lit(b, true))
	}
	return act, e.sess.AddClause(cl)
}

// extractInputs reads the counterexample input vector in the unrolled
// circuit's declaration order.
func (e *sessionEncoder) extractInputs(u *circuit.Circuit, m cnf.Model) []bool {
	out := make([]bool, len(u.Inputs))
	for i, s := range u.Inputs {
		out[i] = m.Value(e.vars[s-1]) == cnf.True
	}
	return out
}
