// Package kernelcheck is the bridge between the untrusted annotators and
// the trusted kernel (internal/kernel). Every proof format terminates here:
// parsed LRAT goes straight in, native traces and DRAT proofs are first
// annotated by the forward engine (hint recording, internal/drat) and then
// re-verified by the kernel — so the only code path that can report
// "verified" is kernel.Check.
//
// This package deliberately lives outside internal/drat: the certification
// pipeline (internal/certify) requires that the watched-literal DRAT engine
// and the kernel path share no verification package, and extracting the
// bridge is what keeps internal/drat free of any internal/kernel import.
package kernelcheck

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/kernel"
	"satcheck/internal/trace"
	"satcheck/internal/tracecheck"
)

// noStep fills CheckError.Step for clausal failures, which have no
// within-clause resolution step index (mirrors internal/drat).
const noStep = -1

// kernelRun bundles a reusable kernel checker with the flat translation
// buffers feeding it. Pooled so steady-state service traffic re-verifies
// proofs without re-growing any arrays.
type kernelRun struct {
	ck   kernel.Checker
	kf   kernel.Formula
	kp   kernel.Proof
	norm cnf.Clause
}

var kernelRuns = sync.Pool{New: func() any { return new(kernelRun) }}

// checkLRATKernel flattens (f, proof) and runs the trusted kernel.
// Rejections map onto the exact *checker.CheckError values of the historic
// in-package verifier, so callers and tests see byte-identical diagnostics.
func checkLRATKernel(f *cnf.Formula, proof *drat.LRATProof, opts checker.Options, wantCore bool) (*checker.Result, error) {
	kr := kernelRuns.Get().(*kernelRun)
	defer kernelRuns.Put(kr)
	if err := kr.flatten(f, proof); err != nil {
		return nil, err
	}
	kres, err := kr.ck.Check(&kr.kf, &kr.kp, kernel.Options{
		MemLimitWords: opts.MemLimitWords,
		Interrupt:     opts.Interrupt,
		WantCore:      wantCore,
	})
	if err != nil {
		return nil, kernelError(err)
	}
	res := &checker.Result{
		LearnedTotal:    kres.Adds,
		ClausesBuilt:    kres.Built,
		ResolutionSteps: kres.Steps,
		PeakMemWords:    kres.PeakMemWords,
	}
	if wantCore {
		core := make([]int, len(kres.Core))
		for i, idx := range kres.Core {
			core[i] = int(idx)
		}
		res.CoreClauses = core
		res.CoreVars = kres.CoreVars
	}
	return res, nil
}

// flatten translates the formula and proof into the kernel's flat int32
// form, reusing kr's buffers. Original clauses are normalized (the
// verifier contract since PR 3); proof lits are taken verbatim. cnf.Lit's
// encoding (var<<1 | neg) is already the kernel's, so literals copy
// directly.
func (kr *kernelRun) flatten(f *cnf.Formula, proof *drat.LRATProof) error {
	kf, kp := &kr.kf, &kr.kp
	kf.Lits = kf.Lits[:0]
	kf.Off = append(kf.Off[:0], 0)
	maxVar := f.NumVars
	for _, c := range f.Clauses {
		kr.norm = append(kr.norm[:0], c...)
		w, _ := kr.norm.Normalize()
		for _, l := range w {
			if int(l.Var()) > maxVar {
				maxVar = int(l.Var())
			}
			kf.Lits = append(kf.Lits, int32(l))
		}
		kf.Off = append(kf.Off, int32(len(kf.Lits)))
	}
	kp.Ops = kp.Ops[:0]
	kp.Lits = kp.Lits[:0]
	kp.Hints = kp.Hints[:0]
	kp.Dels = kp.Dels[:0]
	kp.NumAdds = 0
	pMaxVar := 0
	for li := range proof.Lines {
		ln := &proof.Lines[li]
		id, err := kernelID(ln.ID)
		if err != nil {
			return err
		}
		if ln.Del {
			op := kernel.Op{ID: id, Del: true, DelOff: int32(len(kp.Dels))}
			for _, d := range ln.DelIDs {
				di, err := kernelID(d)
				if err != nil {
					return err
				}
				kp.Dels = append(kp.Dels, di)
			}
			op.DelN = int32(len(kp.Dels)) - op.DelOff
			kp.Ops = append(kp.Ops, op)
			continue
		}
		op := kernel.Op{ID: id, LitOff: int32(len(kp.Lits)), HintOff: int32(len(kp.Hints))}
		for _, l := range ln.Lits {
			if int(l.Var()) > pMaxVar {
				pMaxVar = int(l.Var())
			}
			kp.Lits = append(kp.Lits, int32(l))
		}
		for _, h := range ln.Hints {
			if h > math.MaxInt32 || h < -math.MaxInt32 {
				return kernelIDRange(h)
			}
			kp.Hints = append(kp.Hints, int32(h))
		}
		op.LitN = int32(len(kp.Lits)) - op.LitOff
		op.HintN = int32(len(kp.Hints)) - op.HintOff
		kp.Ops = append(kp.Ops, op)
		kp.NumAdds++
	}
	if maxVar > (math.MaxInt32-2)/2 || pMaxVar > (math.MaxInt32-2)/2 {
		return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep,
			Detail: "variable range exceeds the kernel's 31-bit literal space"}
	}
	kf.NumVars = int32(maxVar)
	kp.MaxVar = int32(pMaxVar)
	return nil
}

// kernelID narrows a clause ID to the kernel's int32 ID space. The LRAT
// tokenizer admits IDs up to ~16× the variable cap, so a hostile proof can
// exceed 31 bits; the kernel rejects such proofs outright rather than
// alias IDs.
func kernelID(id int) (int32, error) {
	if id > math.MaxInt32 || id < -math.MaxInt32 {
		return 0, kernelIDRange(id)
	}
	return int32(id), nil
}

func kernelIDRange(id int) error {
	return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep,
		Detail: fmt.Sprintf("clause ID %d exceeds the kernel's 31-bit ID space", id)}
}

// kernelError converts a kernel rejection into the historic CheckError
// vocabulary. Non-kernel errors (Options.Interrupt) pass through verbatim —
// the facade detects context cancellation by error identity.
func kernelError(err error) error {
	ke, ok := err.(*kernel.Error)
	if !ok {
		return err
	}
	ce := &checker.CheckError{ClauseID: int(ke.Line), Step: noStep}
	switch ke.Code {
	case kernel.ErrDeleteUnknown:
		ce.Kind = checker.FailTrace
		ce.Detail = fmt.Sprintf("deletion of unknown clause %d", ke.Ref)
	case kernel.ErrIDOrder:
		ce.Kind = checker.FailTrace
		ce.Detail = fmt.Sprintf("clause IDs must increase (previous %d)", ke.Ref)
	case kernel.ErrHintNotLive:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("hint references clause %d, which is not live", ke.Ref)
	case kernel.ErrHintSatisfied:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("hinted clause %d is satisfied, not unit", ke.Ref)
	case kernel.ErrHintTwoUnassigned:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("hinted clause %d has two unassigned literals", ke.Ref)
	case kernel.ErrRUPNoConflict:
		ce.Kind = checker.FailHint
		ce.Detail = "RUP hints end without a conflict"
	case kernel.ErrEmptyRAT:
		ce.Kind = checker.FailHint
		ce.Detail = "empty clause cannot be RAT"
	case kernel.ErrPositiveHint:
		ce.Kind = checker.FailHint
		ce.Detail = "positive hint where a RAT candidate group was expected"
	case kernel.ErrGroupNotCandidate:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("RAT group for clause %d, which does not contain %s", ke.Ref, cnf.Lit(ke.Lit))
	case kernel.ErrGroupDuplicate:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("duplicate RAT group for clause %d", ke.Ref)
	case kernel.ErrGroupNoConflict:
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("RAT group for clause %d ends without a conflict", ke.Ref)
	case kernel.ErrMissingCandidates:
		ids := make([]int, len(ke.IDs))
		for i, id := range ke.IDs {
			ids[i] = int(id)
		}
		ce.Kind = checker.FailHint
		ce.Detail = fmt.Sprintf("RAT check misses resolution candidates %v", ids)
	case kernel.ErrNotEmpty:
		ce.Kind = checker.FailNotEmpty
		ce.Detail = "LRAT proof ends without deriving the empty clause"
	case kernel.ErrMemFormula:
		ce.Kind = checker.FailMemoryLimit
		ce.Detail = "formula alone exceeds the memory budget"
	case kernel.ErrMemDB:
		ce.Kind = checker.FailMemoryLimit
		ce.Detail = "clause database exceeded the memory budget"
	default:
		ce.Kind = checker.FailHint
		ce.Detail = ke.Error()
	}
	return ce
}

// TranslateKernelError exposes the kernel→CheckError mapping to the
// out-of-core checker (internal/ooc), which drives kernel windows itself
// but must surface the same diagnostics as the in-memory path.
func TranslateKernelError(err error) error { return kernelError(err) }

// TraceLRATLines bridges a native solver trace to annotated LRAT lines:
// TraceCheck export, parse, and forward hint annotation — everything
// KernelCheckTrace does short of the kernel run. The out-of-core checker
// uses it to obtain a window-checkable LRAT stream from a trace.
func TraceLRATLines(f *cnf.Formula, src trace.Source, opts checker.Options) ([]drat.LRATLine, error) {
	var tc bytes.Buffer
	if _, err := tracecheck.Export(f, src, &tc); err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
	}
	clauses, err := tracecheck.Parse(&tc)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
	}
	proof := proofFromTraceCheck(clauses, len(f.Clauses))
	_, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	return lines, nil
}

// CheckLRATCore is CheckLRAT with the kernel's hint-closure unsat core
// computed (CheckLRAT historically reports none; core extraction is wanted
// when cross-checking cores against the out-of-core checker).
func CheckLRATCore(f *cnf.Formula, src drat.Source, opts checker.Options) (*checker.Result, error) {
	proof, err := drat.LoadLRAT(src)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	return checkLRATKernel(f, proof, opts, true)
}

// CheckLRAT verifies an LRAT proof of f with the trusted kernel: a
// deliberately small hint-following verifier (internal/kernel) that shares
// no propagation code with the DRAT engine, so the two implementations
// cross-check each other. Rejections come back as *checker.CheckError
// (FailHint for bad hints).
func CheckLRAT(f *cnf.Formula, src drat.Source, opts checker.Options) (*checker.Result, error) {
	proof, err := drat.LoadLRAT(src)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	return CheckLRATProof(f, proof, opts)
}

// CheckLRATProof verifies an already-parsed LRAT proof with the trusted
// kernel (internal/kernel): the flat-array hint-following core that every
// proof format funnels into. Verdicts and diagnostics are byte-identical
// to the historic in-package verifier, which survives only as a test-time
// cross-check (internal/drat/lrat_legacy.go).
func CheckLRATProof(f *cnf.Formula, proof *drat.LRATProof, opts checker.Options) (*checker.Result, error) {
	return checkLRATKernel(f, proof, opts, false)
}

// KernelCheckTrace verifies a native solver trace end to end through the
// trusted kernel: the TraceCheck exporter materializes learned clauses, the
// forward RUP engine (untrusted annotator) records unit-propagation hints,
// and the kernel re-verifies the hinted derivation. The returned Result is
// the kernel's, including the hint-closure unsat core over the original
// clauses.
func KernelCheckTrace(f *cnf.Formula, src trace.Source, opts checker.Options) (*checker.Result, error) {
	var tc bytes.Buffer
	if _, err := tracecheck.Export(f, src, &tc); err != nil {
		// Export surfaces malformed traces as plain errors; classify them the
		// way every native checker does so callers (zverify exit 2, zcheckd
		// "rejected" verdicts) see a rejection, not an internal failure.
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
	}
	clauses, err := tracecheck.Parse(&tc)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
	}
	proof := proofFromTraceCheck(clauses, len(f.Clauses))
	_, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	return checkLRATKernel(f, &drat.LRATProof{Lines: lines}, opts, true)
}

// KernelCheckDRAT verifies a DRUP/DRAT proof through the trusted kernel:
// forward annotation, then kernel verification of the hinted form. The
// returned Result is the kernel's (LearnedTotal counts the annotated LRAT
// additions), with the hint-closure core.
func KernelCheckDRAT(f *cnf.Formula, src drat.Source, opts checker.Options) (*checker.Result, error) {
	proof, err := drat.Load(src)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	return KernelCheckDRATProof(f, proof, opts)
}

// KernelCheckDRATProof is KernelCheckDRAT over an already-parsed proof.
func KernelCheckDRATProof(f *cnf.Formula, proof *drat.Proof, opts checker.Options) (*checker.Result, error) {
	_, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	return checkLRATKernel(f, &drat.LRATProof{Lines: lines}, opts, true)
}
