package kernelcheck

import (
	"bytes"
	"io"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/trace"
	"satcheck/internal/tracecheck"
)

// DRATToLRAT checks a DRUP/DRAT proof forward, recording unit-propagation
// hints, and writes the equivalent LRAT proof to w. The emitted lines are
// re-verified by the trusted kernel before anything is written, so a
// successful return certifies the output twice over. The returned Result
// is the forward DRAT check's.
func DRATToLRAT(f *cnf.Formula, src drat.Source, w io.Writer, opts checker.Options) (*checker.Result, error) {
	proof, err := drat.Load(src)
	if err != nil {
		return nil, &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: noStep, Err: err}
	}
	res, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	if err := emitVerified(f, lines, w, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// TraceToLRAT converts a native satcheck trace to LRAT: learned clause
// contents are materialized through the TraceCheck exporter (each resolution
// chain is validated on the way), the resulting clause sequence is run
// through the forward RUP engine with hint recording, and the emitted LRAT
// is re-verified independently before being written.
func TraceToLRAT(f *cnf.Formula, src trace.Source, w io.Writer, opts checker.Options) (*checker.Result, error) {
	var tc bytes.Buffer
	if _, err := tracecheck.Export(f, src, &tc); err != nil {
		return nil, err
	}
	clauses, err := tracecheck.Parse(&tc)
	if err != nil {
		return nil, err
	}
	proof := proofFromTraceCheck(clauses, len(f.Clauses))
	res, lines, err := drat.AnnotateForward(f, proof, opts)
	if err != nil {
		return nil, err
	}
	if err := emitVerified(f, lines, w, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// TraceCheckToLRAT converts parsed TraceCheck clauses to LRAT using chain
// reversal: a trivial resolution chain with distinct pivots is exactly a
// reverse-unit-propagation certificate read backwards, so the hints of each
// derived clause are its antecedents reversed (conflicting clause last).
// Chains can in principle repeat pivot variables, where reversal is not a
// valid RUP order — which is why the emitted proof is always re-verified by
// the trusted kernel before being written; the returned Result is that
// verification's.
func TraceCheckToLRAT(f *cnf.Formula, clauses []tracecheck.Clause, w io.Writer, opts checker.Options) (*checker.Result, error) {
	nOrig := len(f.Clauses)
	lines := make([]drat.LRATLine, 0, len(clauses))
	for _, c := range clauses {
		if c.ID <= nOrig {
			continue // originals are implied by the formula in LRAT
		}
		hints := make([]int, len(c.Antecedents))
		for i, a := range c.Antecedents {
			hints[len(hints)-1-i] = a
		}
		lines = append(lines, drat.LRATLine{ID: c.ID, Lits: c.Lits, Hints: hints})
	}
	res, err := verifyLines(f, lines, opts)
	if err != nil {
		return nil, err
	}
	if err := drat.WriteLines(w, lines); err != nil {
		return nil, err
	}
	return res, nil
}

// emitVerified re-verifies freshly generated lines with the trusted kernel
// and only then writes them.
func emitVerified(f *cnf.Formula, lines []drat.LRATLine, w io.Writer, opts checker.Options) error {
	if _, err := verifyLines(f, lines, opts); err != nil {
		return err
	}
	return drat.WriteLines(w, lines)
}

func verifyLines(f *cnf.Formula, lines []drat.LRATLine, opts checker.Options) (*checker.Result, error) {
	return CheckLRATProof(f, &drat.LRATProof{Lines: lines}, opts)
}

// proofFromTraceCheck lifts the derived clauses of a TraceCheck file into a
// clausal proof (additions only; TraceCheck has no deletions).
func proofFromTraceCheck(clauses []tracecheck.Clause, nOrig int) *drat.Proof {
	p := &drat.Proof{}
	for _, c := range clauses {
		if c.ID <= nOrig {
			continue
		}
		p.Steps = append(p.Steps, drat.Step{Lits: c.Lits})
		p.Ints += int64(len(c.Lits)) + 1
	}
	return p
}
