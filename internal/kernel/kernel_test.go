package kernel

import (
	"errors"
	"testing"
)

// flit converts a DIMACS literal to the kernel encoding.
func flit(d int) int32 {
	if d < 0 {
		return int32(-d)*2 + 1
	}
	return int32(d) * 2
}

// form builds a flat Formula from DIMACS clauses.
func form(clauses ...[]int) *Formula {
	f := &Formula{Off: []int32{0}}
	for _, cl := range clauses {
		for _, d := range cl {
			l := flit(d)
			if l>>1 > f.NumVars {
				f.NumVars = l >> 1
			}
			f.Lits = append(f.Lits, l)
		}
		f.Off = append(f.Off, int32(len(f.Lits)))
	}
	return f
}

// pb builds a flat Proof line by line.
type pb struct{ p Proof }

func (b *pb) add(id int, lits []int, hints []int) *pb {
	op := Op{ID: int32(id), LitOff: int32(len(b.p.Lits)), HintOff: int32(len(b.p.Hints))}
	for _, d := range lits {
		l := flit(d)
		if l>>1 > b.p.MaxVar {
			b.p.MaxVar = l >> 1
		}
		b.p.Lits = append(b.p.Lits, l)
	}
	for _, h := range hints {
		b.p.Hints = append(b.p.Hints, int32(h))
	}
	op.LitN = int32(len(b.p.Lits)) - op.LitOff
	op.HintN = int32(len(b.p.Hints)) - op.HintOff
	b.p.Ops = append(b.p.Ops, op)
	b.p.NumAdds++
	return b
}

func (b *pb) del(id int, ids ...int) *pb {
	op := Op{ID: int32(id), Del: true, DelOff: int32(len(b.p.Dels))}
	for _, d := range ids {
		b.p.Dels = append(b.p.Dels, int32(d))
	}
	op.DelN = int32(len(b.p.Dels)) - op.DelOff
	b.p.Ops = append(b.p.Ops, op)
	return b
}

// quad is the canonical 2-variable UNSAT formula:
// (1 2) (1 -2) (-1 2) (-1 -2).
func quad() *Formula {
	return form([]int{1, 2}, []int{1, -2}, []int{-1, 2}, []int{-1, -2})
}

// quadProof refutes quad: derive (1) under ¬1 via clauses 1,2, then the
// empty clause via 5,3,4.
func quadProof() *Proof {
	b := &pb{}
	b.add(5, []int{1}, []int{1, 2}).add(6, nil, []int{5, 3, 4})
	return &b.p
}

func mustCheck(t *testing.T, f *Formula, p *Proof, opts Options) Result {
	t.Helper()
	res, err := Check(f, p, opts)
	if err != nil {
		t.Fatalf("kernel rejected a valid proof: %v", err)
	}
	return res
}

func mustReject(t *testing.T, f *Formula, p *Proof, code ErrCode) *Error {
	t.Helper()
	_, err := Check(f, p, Options{})
	var ke *Error
	if !errors.As(err, &ke) {
		t.Fatalf("want *kernel.Error, got %v", err)
	}
	if ke.Code != code {
		t.Fatalf("code = %d (%v), want %d", ke.Code, ke, code)
	}
	return ke
}

func TestAcceptBasic(t *testing.T) {
	res := mustCheck(t, quad(), quadProof(), Options{})
	if res.Adds != 2 || res.Built != 2 {
		t.Errorf("adds/built = %d/%d, want 2/2", res.Adds, res.Built)
	}
	if res.Steps != 5 {
		t.Errorf("steps = %d, want 5", res.Steps)
	}
	if res.PeakMemWords != 9 {
		t.Errorf("peak = %d, want 9", res.PeakMemWords)
	}
}

func TestAcceptWithDeletion(t *testing.T) {
	b := &pb{}
	b.add(5, []int{1}, []int{1, 2}).del(5, 1, 2).add(6, nil, []int{5, 3, 4})
	res := mustCheck(t, quad(), &b.p, Options{})
	if res.Built != 2 {
		t.Errorf("built = %d, want 2", res.Built)
	}
	if res.PeakMemWords != 9 {
		t.Errorf("peak = %d, want 9", res.PeakMemWords)
	}
}

// TestAcceptSparseIDs exercises the binary-search ID lookup: addition IDs
// with gaps must resolve for hints and deletions alike.
func TestAcceptSparseIDs(t *testing.T) {
	b := &pb{}
	b.add(10, []int{1}, []int{1, 2}).add(40, []int{2}, []int{10, 3}).del(40, 1).add(70, nil, []int{10, 40, 4})
	mustCheck(t, quad(), &b.p, Options{})
}

// TestAcceptBlockedClause pins the RAT path with an empty candidate set: a
// definition over a fresh variable needs no hints at all.
func TestAcceptBlockedClause(t *testing.T) {
	f := quad()
	b := &pb{}
	// x3 is fresh: no clause contains ¬x3, so (3 1) is blocked on pivot 3.
	b.add(5, []int{3, 1}, nil)
	b.add(6, []int{1}, []int{1, 2}).add(7, nil, []int{6, 3, 4})
	res := mustCheck(t, f, &b.p, Options{})
	if res.Built != 3 {
		t.Errorf("built = %d, want 3", res.Built)
	}
}

// TestAcceptRATGroup pins a candidate group verified by an immediate
// contradiction (tautological resolvent), including skipping its hints.
func TestAcceptRATGroup(t *testing.T) {
	f := form([]int{-3, 1}, []int{1, 2}, []int{-1, 2}, []int{1, -2}, []int{-1, -2})
	b := &pb{}
	// (3 -1) resolved with clause 1 on pivot 3 gives (1 -1): tautological.
	// The spurious positive hint inside the group must be skipped.
	b.add(6, []int{3, -1}, []int{-1, 2})
	b.add(7, []int{1}, []int{2, 4}).add(8, nil, []int{7, 3, 5})
	mustCheck(t, f, &b.p, Options{})
}

func TestCore(t *testing.T) {
	// An irrelevant original clause must stay out of the hint-closure core.
	f := form([]int{1, 2}, []int{1, -2}, []int{-1, 2}, []int{-1, -2}, []int{3, 4})
	b := &pb{}
	b.add(6, []int{1}, []int{1, 2}).add(7, nil, []int{6, 3, 4})
	res := mustCheck(t, f, &b.p, Options{WantCore: true})
	want := []int32{0, 1, 2, 3}
	if len(res.Core) != len(want) {
		t.Fatalf("core = %v, want %v", res.Core, want)
	}
	for i, idx := range want {
		if res.Core[i] != idx {
			t.Fatalf("core = %v, want %v", res.Core, want)
		}
	}
	if res.CoreVars != 2 {
		t.Errorf("core vars = %d, want 2", res.CoreVars)
	}
}

func TestRejections(t *testing.T) {
	tests := []struct {
		name  string
		f     *Formula
		build func(*pb)
		code  ErrCode
	}{
		{"delete-unknown", quad(), func(b *pb) { b.del(4, 99) }, ErrDeleteUnknown},
		{"id-order", quad(), func(b *pb) { b.add(4, []int{1}, []int{1, 2}) }, ErrIDOrder},
		{"hint-not-live", quad(), func(b *pb) { b.add(5, []int{1}, []int{99}) }, ErrHintNotLive},
		{"hint-deleted", quad(), func(b *pb) { b.del(4, 1).add(5, []int{1}, []int{1, 2}) }, ErrHintNotLive},
		{"hint-satisfied", quad(), func(b *pb) { b.add(5, []int{-1}, []int{1}) }, ErrHintSatisfied},
		{"hint-two-unassigned", quad(), func(b *pb) { b.add(5, nil, []int{1}) }, ErrHintTwoUnassigned},
		{"rup-no-conflict", quad(), func(b *pb) {
			b.add(5, []int{1}, []int{1, 2}).add(6, nil, []int{5, 3})
		}, ErrRUPNoConflict},
		{"empty-rat", quad(), func(b *pb) {
			b.add(5, []int{1}, []int{1, 2}).add(6, nil, []int{5, -1, 2})
		}, ErrEmptyRAT},
		{"group-not-candidate", quad(), func(b *pb) {
			// Pivot 3 is fresh; clause 1 does not contain ¬3.
			b.add(5, []int{3}, []int{-1})
		}, ErrGroupNotCandidate},
		{"missing-candidates", form([]int{-3, 1}, []int{3, 2}), func(b *pb) {
			// Pivot 3 has live candidate (clause 1) but no groups cover it.
			b.add(3, []int{3, 2}, nil)
		}, ErrMissingCandidates},
		{"not-empty", quad(), func(b *pb) { b.add(5, []int{1}, []int{1, 2}) }, ErrNotEmpty},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := &pb{}
			tt.build(b)
			mustReject(t, tt.f, &b.p, tt.code)
		})
	}
}

func TestRejectGroupDetails(t *testing.T) {
	// Pivot 3's sole candidate (clause 1) resolves to (-1), refuted by the
	// unit clause 2 = (-1).
	f := form([]int{-3, -1}, []int{-1}, []int{1, 2})
	accept := &pb{}
	accept.add(4, []int{3, 2}, []int{-1, 2})
	if _, err := Check(f, &accept.p, Options{}); err != nil {
		var ke *Error
		if !errors.As(err, &ke) || ke.Code != ErrNotEmpty {
			t.Fatalf("valid RAT line rejected: %v", err)
		}
	}

	noConfl := &pb{}
	noConfl.add(4, []int{3, 2}, []int{-1})
	mustReject(t, f, &noConfl.p, ErrGroupNoConflict)

	dup := &pb{}
	dup.add(4, []int{3, 2}, []int{-1, 2, -1, 2})
	mustReject(t, f, &dup.p, ErrGroupDuplicate)

	pos := &pb{}
	pos.add(4, []int{3, 2}, []int{-1, 2, 3})
	mustReject(t, f, &pos.p, ErrPositiveHint)
}

func TestMissingCandidatesSorted(t *testing.T) {
	f := form([]int{-3, 1}, []int{-3, 2}, []int{-3, 1, 2}, []int{2})
	b := &pb{}
	// Lemma (3): candidates are clauses 1, 2, 3; only clause 2's group is
	// given (its resolvent (2) is refuted by assuming ¬2 against clause 4).
	b.add(5, []int{3}, []int{-2, 4})
	ke := mustReject(t, f, &b.p, ErrMissingCandidates)
	if len(ke.IDs) != 2 || ke.IDs[0] != 1 || ke.IDs[1] != 3 {
		t.Errorf("missing IDs = %v, want [1 3]", ke.IDs)
	}
}

func TestMemLimits(t *testing.T) {
	_, err := Check(quad(), quadProof(), Options{MemLimitWords: 4})
	var ke *Error
	if !errors.As(err, &ke) || ke.Code != ErrMemFormula {
		t.Fatalf("want ErrMemFormula, got %v", err)
	}
	_, err = Check(quad(), quadProof(), Options{MemLimitWords: 8})
	if !errors.As(err, &ke) || ke.Code != ErrMemDB {
		t.Fatalf("want ErrMemDB, got %v", err)
	}
	if _, err := Check(quad(), quadProof(), Options{MemLimitWords: 9}); err != nil {
		t.Fatalf("limit at peak must pass: %v", err)
	}
}

// TestInterruptPassthrough pins that an Interrupt error surfaces verbatim
// (the facade detects context cancellation by error identity).
func TestInterruptPassthrough(t *testing.T) {
	// A unit chain long enough to cross the 1024-hint poll cadence.
	const n = 1500
	f := &Formula{Off: []int32{0}, NumVars: n}
	f.Lits = append(f.Lits, flit(1))
	f.Off = append(f.Off, int32(len(f.Lits)))
	for i := 2; i <= n; i++ {
		f.Lits = append(f.Lits, flit(-(i - 1)), flit(i))
		f.Off = append(f.Off, int32(len(f.Lits)))
	}
	f.Lits = append(f.Lits, flit(-n))
	f.Off = append(f.Off, int32(len(f.Lits)))
	hints := make([]int, n+1)
	for i := range hints {
		hints[i] = i + 1
	}
	b := &pb{}
	b.add(n+2, nil, hints)
	if _, err := Check(f, &b.p, Options{}); err != nil {
		t.Fatalf("chain proof must verify: %v", err)
	}
	sentinel := errors.New("stop now")
	_, err := Check(f, &b.p, Options{Interrupt: func() error { return sentinel }})
	if err != sentinel {
		t.Fatalf("interrupt error not passed through: %v", err)
	}
}

// TestSteadyStateAllocs pins the tentpole contract: after a warm-up run, a
// reused Checker verifies proofs — even alternating workloads — with zero
// heap allocations.
func TestSteadyStateAllocs(t *testing.T) {
	f, p := quad(), quadProof()
	f2 := form([]int{1, 2}, []int{-1, 2}, []int{1, -2}, []int{-1, -2})
	b2 := &pb{}
	b2.add(5, []int{2}, []int{1, 2}).add(6, nil, []int{5, 3, 4})
	var c Checker
	if _, err := c.Check(f, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check(f2, &b2.p, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Check(f, p, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Check(f2, &b2.p, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Check allocates: %v allocs/op", allocs)
	}
}

// BenchmarkKernelCheck is the in-package steady-state benchmark the CI
// alloc-smoke step greps: allocs/op must be 0.
func BenchmarkKernelCheck(b *testing.B) {
	f, p := quad(), quadProof()
	var c Checker
	if _, err := c.Check(f, p, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Check(f, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
