// Package kernel is the trusted core of the checking pipeline: a minimal,
// allocation-free, hint-following LRAT verifier. Everything else — the CDCL
// solver, the DRAT engine, the LRAT emitter, the BDD bridge — is an
// untrusted annotator whose output funnels into this package, and a proof
// counts as "verified" only when this kernel accepts it (Cruz-Filipe et
// al.'s certified-checking architecture: fast untrusted pass, tiny trusted
// kernel).
//
// To stay auditable the kernel holds no clever data structures: all clause
// literals live in one flat int32 slab addressed by a dense ID→offset
// index, the assignment/trail are flat arrays indexed by variable, and RAT
// candidate marks are epoch-stamped counters — no maps, no per-clause
// slices, no pointers. After a warm-up run the check loop performs zero
// heap allocations (failure paths may allocate, since they abandon the
// run).
//
// Literals use the solver's encoding: variable v (1-based) is the positive
// literal 2v and the negative literal 2v+1, so l^1 negates and l>>1 is the
// variable.
package kernel

import (
	"fmt"
	"slices"
)

// Formula is the original CNF in flat form: clause i (0-based; its LRAT
// clause ID is i+1) occupies Lits[Off[i]:Off[i+1]]. The front end is
// expected to normalize each clause (sorted, duplicate-free); the kernel
// does not depend on it for soundness, but memory accounting assumes
// stored lengths.
type Formula struct {
	Lits    []int32
	Off     []int32 // len = number of clauses + 1; Off[0] == 0
	NumVars int32
}

// Op is one proof line in flat form. An addition's literals are
// Proof.Lits[LitOff:LitOff+LitN] and its hints
// Proof.Hints[HintOff:HintOff+HintN] (negative hint = RAT candidate group
// opener). A deletion lists Proof.Dels[DelOff:DelOff+DelN].
type Op struct {
	ID             int32
	Del            bool
	LitOff, LitN   int32
	HintOff, HintN int32
	DelOff, DelN   int32
}

// Proof is a flat LRAT proof.
type Proof struct {
	Ops     []Op
	Lits    []int32
	Hints   []int32
	Dels    []int32
	NumAdds int   // addition lines in Ops
	MaxVar  int32 // largest variable appearing in Lits (0 if none)
}

// Options control a single Check call.
type Options struct {
	// MemLimitWords bounds the live clause database (words = literals), 0
	// for unlimited.
	MemLimitWords int64
	// Interrupt, when non-nil, is polled every 1024 hints; a non-nil error
	// aborts the check and is returned verbatim.
	Interrupt func() error
	// WantCore asks for the unsat core: the original clauses reachable from
	// the final empty clause through the transitive closure of the hints.
	WantCore bool
}

// Result reports an accepted proof.
type Result struct {
	// Adds counts addition lines in the proof (verified or not — checking
	// stops at the first verified empty clause).
	Adds int
	// Built counts addition lines actually verified.
	Built int
	// Steps counts hint applications (each one evaluation of a clause under
	// the current assignment).
	Steps int64
	// PeakMemWords is the high-water mark of live clause literals.
	PeakMemWords int64
	// Core lists the 0-based original clause indices in the hint closure of
	// the empty clause, ascending. Nil unless Options.WantCore.
	Core []int32
	// CoreVars counts distinct variables in Core.
	CoreVars int
}

// ErrCode enumerates kernel rejection reasons.
type ErrCode uint8

const (
	// ErrDeleteUnknown: deletion of an ID that is not live.
	ErrDeleteUnknown ErrCode = iota
	// ErrIDOrder: an addition's ID does not exceed every earlier ID.
	ErrIDOrder
	// ErrHintNotLive: a hint references a clause that is not live.
	ErrHintNotLive
	// ErrHintSatisfied: a hinted clause is satisfied, so neither unit nor
	// conflicting.
	ErrHintSatisfied
	// ErrHintTwoUnassigned: a hinted clause has two unassigned literals.
	ErrHintTwoUnassigned
	// ErrRUPNoConflict: an empty clause's RUP hints end without a conflict.
	ErrRUPNoConflict
	// ErrEmptyRAT: an empty clause's hints contain a RAT candidate group.
	ErrEmptyRAT
	// ErrPositiveHint: a positive hint where a candidate group must open.
	ErrPositiveHint
	// ErrGroupNotCandidate: a RAT group names a clause that is not a live
	// resolution candidate (does not contain the negated pivot).
	ErrGroupNotCandidate
	// ErrGroupDuplicate: two RAT groups for the same candidate.
	ErrGroupDuplicate
	// ErrGroupNoConflict: a RAT group's hints end without a conflict.
	ErrGroupNoConflict
	// ErrMissingCandidates: RAT groups do not cover every live candidate.
	ErrMissingCandidates
	// ErrNotEmpty: the proof ends without deriving the empty clause.
	ErrNotEmpty
	// ErrMemFormula: the original formula alone exceeds the memory budget.
	ErrMemFormula
	// ErrMemDB: the clause database exceeded the memory budget mid-proof.
	ErrMemDB
)

// Error is a kernel rejection. Line is the proof line's clause ID (-1 when
// the failure is not tied to a line), Ref a referenced clause ID (hint,
// deletion target, RAT candidate, or the previous ID for ErrIDOrder), Lit
// the negated pivot for ErrGroupNotCandidate, IDs the sorted missing
// candidates for ErrMissingCandidates.
type Error struct {
	Code ErrCode
	Line int32
	Ref  int32
	Lit  int32
	IDs  []int32
}

func (e *Error) Error() string {
	switch e.Code {
	case ErrDeleteUnknown:
		return fmt.Sprintf("kernel: line %d: deletion of unknown clause %d", e.Line, e.Ref)
	case ErrIDOrder:
		return fmt.Sprintf("kernel: line %d: clause IDs must increase (previous %d)", e.Line, e.Ref)
	case ErrHintNotLive:
		return fmt.Sprintf("kernel: line %d: hint references clause %d, which is not live", e.Line, e.Ref)
	case ErrHintSatisfied:
		return fmt.Sprintf("kernel: line %d: hinted clause %d is satisfied, not unit", e.Line, e.Ref)
	case ErrHintTwoUnassigned:
		return fmt.Sprintf("kernel: line %d: hinted clause %d has two unassigned literals", e.Line, e.Ref)
	case ErrRUPNoConflict:
		return fmt.Sprintf("kernel: line %d: RUP hints end without a conflict", e.Line)
	case ErrEmptyRAT:
		return fmt.Sprintf("kernel: line %d: empty clause cannot be RAT", e.Line)
	case ErrPositiveHint:
		return fmt.Sprintf("kernel: line %d: positive hint where a RAT candidate group was expected", e.Line)
	case ErrGroupNotCandidate:
		return fmt.Sprintf("kernel: line %d: RAT group for clause %d, which is not a candidate", e.Line, e.Ref)
	case ErrGroupDuplicate:
		return fmt.Sprintf("kernel: line %d: duplicate RAT group for clause %d", e.Line, e.Ref)
	case ErrGroupNoConflict:
		return fmt.Sprintf("kernel: line %d: RAT group for clause %d ends without a conflict", e.Line, e.Ref)
	case ErrMissingCandidates:
		return fmt.Sprintf("kernel: line %d: RAT check misses resolution candidates %v", e.Line, e.IDs)
	case ErrNotEmpty:
		return "kernel: proof ends without deriving the empty clause"
	case ErrMemFormula:
		return "kernel: formula alone exceeds the memory budget"
	case ErrMemDB:
		return fmt.Sprintf("kernel: line %d: clause database exceeded the memory budget", e.Line)
	}
	return "kernel: rejected"
}

// Checker holds the flat working arrays. A zero Checker is ready; reusing
// one across Check calls reuses its arrays, and once they have grown to
// the workload's high-water mark the check loop allocates nothing.
type Checker struct {
	// Clause store: clause with dense index i occupies
	// slab[off[i]:off[i]+clen[i]]; ids[i] is its LRAT clause ID.
	slab    []int32
	off     []int32
	clen    []int32
	ids     []int32
	live    []bool
	slabLen int32
	nDense  int32
	nOrig   int32

	// ID→dense lookup: originals are ids 1..nOrig (dense id-1). When the
	// proof's addition IDs are consecutive from nOrig+1 (the common case —
	// every in-repo emitter numbers that way), adds are dense id-1 too;
	// otherwise addIDs[0:nAdds] (strictly increasing) is binary-searched.
	contiguous bool
	addIDs     []int32
	nAdds      int32

	// Occurrence index for RAT candidate enumeration: occHead[l] starts a
	// singly linked list of cells, one per literal occurrence; dead cells
	// (deleted clauses) are unlinked lazily during walks.
	occHead  []int32
	cellNext []int32
	cellIdx  []int32
	nCells   int32

	// Assignment: val by variable (+1 true, -1 false, 0 unassigned), trail
	// of assigned literals.
	val      []int8
	trail    []int32
	trailLen int32

	// RAT scratch, epoch-stamped by dense clause index: candStamp[i]==epoch
	// marks i a live candidate this line, candSeen[i]==epoch marks its
	// group as checked.
	candStamp []int64
	candSeen  []int64
	epoch     int64

	// Core marking (WantCore only): opDense maps an addition's op index to
	// its dense clause index; coreMark flags dense indices in the closure.
	opDense  []int32
	coreMark []bool

	interrupt func() error
	pollN     int

	steps    int64
	memCur   int64
	memPeak  int64
	memLimit int64
}

// Check verifies proof against f with a fresh Checker.
func Check(f *Formula, p *Proof, opts Options) (Result, error) {
	var c Checker
	return c.Check(f, p, opts)
}

// Check verifies an LRAT proof. On acceptance the Result carries the
// statistics (and the core when requested); on rejection the error is an
// *Error, except that an Options.Interrupt error is returned verbatim.
func (c *Checker) Check(f *Formula, p *Proof, opts Options) (Result, error) {
	c.init(f, p, opts)
	if c.memLimit > 0 && c.memCur > c.memLimit {
		return Result{}, &Error{Code: ErrMemFormula, Line: -1}
	}
	lastID := c.nOrig
	built := 0
	for oi := range p.Ops {
		op := &p.Ops[oi]
		if op.Del {
			for _, id := range p.Dels[op.DelOff : op.DelOff+op.DelN] {
				idx, ok := c.lookup(id)
				if !ok || !c.live[idx] {
					return Result{}, &Error{Code: ErrDeleteUnknown, Line: op.ID, Ref: id}
				}
				c.live[idx] = false
				c.memCur -= int64(c.clen[idx])
			}
			continue
		}
		if op.ID <= lastID {
			return Result{}, &Error{Code: ErrIDOrder, Line: op.ID, Ref: lastID}
		}
		lastID = op.ID
		if err := c.checkAdd(p, op); err != nil {
			return Result{}, err
		}
		built++
		if op.LitN == 0 {
			// Empty clause verified: the formula is refuted; later lines are
			// irrelevant.
			res := Result{Adds: p.NumAdds, Built: built, Steps: c.steps, PeakMemWords: c.memPeak}
			if opts.WantCore {
				c.markCore(p, oi, &res)
			}
			return res, nil
		}
		idx := c.attach(p.Lits[op.LitOff:op.LitOff+op.LitN], op.ID)
		if opts.WantCore {
			c.opDense[oi] = idx
		}
		if c.memLimit > 0 && c.memCur > c.memLimit {
			return Result{}, &Error{Code: ErrMemDB, Line: op.ID}
		}
	}
	return Result{}, &Error{Code: ErrNotEmpty, Line: -1}
}

// Steps reports the hint applications performed by the most recent Check,
// whatever its outcome. Check returns a Result only on acceptance, so
// drivers that run the kernel repeatedly over partial proofs (the
// out-of-core window checker) read per-run statistics here.
func (c *Checker) Steps() int64 { return c.steps }

// PeakMemWords reports the most recent Check's live-clause high-water mark
// in words, whatever its outcome (see Steps).
func (c *Checker) PeakMemWords() int64 { return c.memPeak }

// init sizes every array for the whole run (so the check loop never grows
// anything), resets per-run state, and attaches the original clauses.
func (c *Checker) init(f *Formula, p *Proof, opts Options) {
	nOrig := int32(len(f.Off) - 1)
	maxVar := f.NumVars
	if p.MaxVar > maxVar {
		maxVar = p.MaxVar
	}
	nClauses := nOrig + int32(p.NumAdds)
	totalLits := int32(len(f.Lits) + len(p.Lits))
	nLitSlots := 2*maxVar + 2

	c.slab = grow(c.slab, totalLits)
	c.off = grow(c.off, nClauses)
	c.clen = grow(c.clen, nClauses)
	c.ids = grow(c.ids, nClauses)
	c.live = grow(c.live, nClauses)
	c.addIDs = grow(c.addIDs, int32(p.NumAdds))
	c.occHead = grow(c.occHead, nLitSlots)
	c.cellNext = grow(c.cellNext, totalLits)
	c.cellIdx = grow(c.cellIdx, totalLits)
	c.val = grow(c.val, maxVar+1)
	c.trail = grow(c.trail, maxVar+1)
	c.candStamp = grow(c.candStamp, nClauses)
	c.candSeen = grow(c.candSeen, nClauses)
	if opts.WantCore {
		c.opDense = grow(c.opDense, int32(len(p.Ops)))
		c.coreMark = grow(c.coreMark, nClauses)
		for i := range c.coreMark[:nClauses] {
			c.coreMark[i] = false
		}
	}
	for i := range c.occHead[:nLitSlots] {
		c.occHead[i] = -1
	}
	for i := range c.val[:maxVar+1] {
		c.val[i] = 0
	}
	for i := int32(0); i < nClauses; i++ {
		c.candStamp[i] = 0
		c.candSeen[i] = 0
	}
	c.epoch = 0
	c.slabLen, c.nDense, c.nCells, c.nAdds = 0, 0, 0, 0
	c.nOrig = nOrig
	c.trailLen = 0
	c.steps, c.memCur, c.memPeak = 0, 0, 0
	c.memLimit = opts.MemLimitWords
	c.interrupt = opts.Interrupt
	c.pollN = 0

	c.contiguous = true
	next := nOrig + 1
	for i := range p.Ops {
		if p.Ops[i].Del {
			continue
		}
		if p.Ops[i].ID != next {
			c.contiguous = false
			break
		}
		next++
	}

	for i := int32(0); i < nOrig; i++ {
		c.attach(f.Lits[f.Off[i]:f.Off[i+1]], i+1)
	}
}

// grow returns s with length n, reusing its array when capacity allows.
func grow[T int8 | int32 | int64 | bool](s []T, n int32) []T {
	if int32(cap(s)) < n {
		return make([]T, n)
	}
	return s[:n]
}

// attach appends a clause to the store and occurrence index.
func (c *Checker) attach(lits []int32, id int32) int32 {
	idx := c.nDense
	c.nDense++
	c.off[idx] = c.slabLen
	c.clen[idx] = int32(len(lits))
	c.ids[idx] = id
	c.live[idx] = true
	copy(c.slab[c.slabLen:], lits)
	c.slabLen += int32(len(lits))
	for _, l := range lits {
		cell := c.nCells
		c.nCells++
		c.cellIdx[cell] = idx
		c.cellNext[cell] = c.occHead[l]
		c.occHead[l] = cell
	}
	if id > c.nOrig {
		c.addIDs[c.nAdds] = id
		c.nAdds++
	}
	c.memCur += int64(len(lits))
	if c.memCur > c.memPeak {
		c.memPeak = c.memCur
	}
	return idx
}

// lookup resolves a clause ID to its dense index (live or not).
func (c *Checker) lookup(id int32) (int32, bool) {
	if id <= 0 {
		return 0, false
	}
	if id <= c.nOrig {
		return id - 1, true
	}
	if c.contiguous {
		if id-1 < c.nDense {
			return id - 1, true
		}
		return 0, false
	}
	lo, hi := int32(0), c.nAdds
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if c.addIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.nAdds && c.addIDs[lo] == id {
		return c.nOrig + lo, true
	}
	return 0, false
}

// litValue evaluates literal l under the current assignment.
func (c *Checker) litValue(l int32) int8 {
	v := c.val[l>>1]
	if l&1 == 1 {
		return -v
	}
	return v
}

// assume sets l true; conflict reports that l was already false.
func (c *Checker) assume(l int32) (conflict bool) {
	switch c.litValue(l) {
	case -1:
		return true
	case 1:
		return false
	}
	if l&1 == 1 {
		c.val[l>>1] = -1
	} else {
		c.val[l>>1] = 1
	}
	c.trail[c.trailLen] = l
	c.trailLen++
	return false
}

// undoTo unassigns trail literals back to position mark.
func (c *Checker) undoTo(mark int32) {
	for i := c.trailLen - 1; i >= mark; i-- {
		c.val[c.trail[i]>>1] = 0
	}
	c.trailLen = mark
}

func (c *Checker) poll() error {
	if c.interrupt == nil {
		return nil
	}
	if c.pollN++; c.pollN%1024 != 0 {
		return nil
	}
	return c.interrupt()
}

// applyHint evaluates hinted clause id under the current assignment: it
// must be conflicting (all literals false) or unit; a unit extends the
// assignment.
func (c *Checker) applyHint(id, lineID int32) (conflict bool, err error) {
	idx, ok := c.lookup(id)
	if !ok || !c.live[idx] {
		return false, &Error{Code: ErrHintNotLive, Line: lineID, Ref: id}
	}
	unit := int32(-1)
	for _, l := range c.slab[c.off[idx] : c.off[idx]+c.clen[idx]] {
		switch c.litValue(l) {
		case -1:
			continue
		case 1:
			return false, &Error{Code: ErrHintSatisfied, Line: lineID, Ref: id}
		default:
			if unit >= 0 {
				return false, &Error{Code: ErrHintTwoUnassigned, Line: lineID, Ref: id}
			}
			unit = l
		}
	}
	c.steps++
	if unit < 0 {
		return true, nil
	}
	c.assume(unit)
	return false, nil
}

// checkSegment consumes positive hints until a conflict; ok reports
// whether the segment ended in one.
func (c *Checker) checkSegment(hints []int32, lineID int32) (consumed int32, ok bool, err error) {
	for i := int32(0); i < int32(len(hints)); i++ {
		h := hints[i]
		if h < 0 {
			return i, false, nil
		}
		if err := c.poll(); err != nil {
			return i, false, err
		}
		confl, err := c.applyHint(h, lineID)
		if err != nil {
			return i, false, err
		}
		if confl {
			return i + 1, true, nil
		}
	}
	return int32(len(hints)), false, nil
}

// checkAdd verifies one addition line: assume the lemma's negation, follow
// the RUP hints, and fall back to hinted RAT groups over the candidates
// holding the negated pivot.
func (c *Checker) checkAdd(p *Proof, op *Op) error {
	c.undoTo(0)
	lits := p.Lits[op.LitOff : op.LitOff+op.LitN]
	for _, l := range lits {
		if c.assume(l ^ 1) {
			return nil // tautological lemma: valid with no hints
		}
	}
	hints := p.Hints[op.HintOff : op.HintOff+op.HintN]
	consumed, ok, err := c.checkSegment(hints, op.ID)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	if op.LitN == 0 {
		// The empty clause has no pivot to be RAT on.
		if consumed == op.HintN {
			return &Error{Code: ErrRUPNoConflict, Line: op.ID}
		}
		return &Error{Code: ErrEmptyRAT, Line: op.ID}
	}
	// RAT: every live clause containing the negated pivot must be covered
	// by a candidate group. Stamp the live candidates (unlinking cells of
	// deleted clauses as the list is walked), then consume groups.
	npivot := lits[0] ^ 1
	c.epoch++
	ep := c.epoch
	required := int32(0)
	prev := int32(-1)
	for cell := c.occHead[npivot]; cell >= 0; {
		next := c.cellNext[cell]
		idx := c.cellIdx[cell]
		if !c.live[idx] {
			if prev < 0 {
				c.occHead[npivot] = next
			} else {
				c.cellNext[prev] = next
			}
			cell = next
			continue
		}
		if c.candStamp[idx] != ep {
			c.candStamp[idx] = ep
			required++
		}
		prev = cell
		cell = next
	}
	base := c.trailLen
	covered := int32(0)
	rest := hints[consumed:]
	for len(rest) > 0 {
		if rest[0] >= 0 {
			return &Error{Code: ErrPositiveHint, Line: op.ID}
		}
		candID := -rest[0]
		rest = rest[1:]
		cidx, found := c.lookup(candID)
		if !found || !c.live[cidx] || c.candStamp[cidx] != ep {
			return &Error{Code: ErrGroupNotCandidate, Line: op.ID, Ref: candID, Lit: npivot}
		}
		if c.candSeen[cidx] == ep {
			return &Error{Code: ErrGroupDuplicate, Line: op.ID, Ref: candID}
		}
		c.candSeen[cidx] = ep
		covered++
		// Assume the negation of the candidate half of the resolvent; an
		// immediate contradiction (tautological or already-falsified
		// resolvent) verifies the group, and any hints the producer emitted
		// for it are skipped — they were computed against a fuller
		// assumption set than exists at the contradiction.
		immediate := false
		for _, d := range c.slab[c.off[cidx] : c.off[cidx]+c.clen[cidx]] {
			if d == npivot {
				continue
			}
			if c.assume(d ^ 1) {
				immediate = true
				break
			}
		}
		if immediate {
			n := 0
			for n < len(rest) && rest[n] >= 0 {
				n++
			}
			rest = rest[n:]
			c.undoTo(base)
			continue
		}
		n, gok, err := c.checkSegment(rest, op.ID)
		if err != nil {
			return err
		}
		if !gok {
			return &Error{Code: ErrGroupNoConflict, Line: op.ID, Ref: candID}
		}
		rest = rest[n:]
		c.undoTo(base)
	}
	if covered != required {
		missing := make([]int32, 0, required-covered)
		for idx := int32(0); idx < c.nDense; idx++ {
			if c.live[idx] && c.candStamp[idx] == ep && c.candSeen[idx] != ep {
				missing = append(missing, c.ids[idx])
			}
		}
		slices.Sort(missing)
		return &Error{Code: ErrMissingCandidates, Line: op.ID, IDs: missing}
	}
	return nil
}

// markCore walks the accepted derivation backward from the final empty
// line, marking the transitive hint closure; the marked originals are an
// unsatisfiable core. Deleting clauses never breaks the closure's
// validity: every hint was live when followed, and the lines the closure
// keeps re-verify in order against the kept clauses alone (RUP hints stay
// applicable, RAT sets only shrink).
func (c *Checker) markCore(p *Proof, finalOp int, res *Result) {
	c.undoTo(0)
	markHints := func(op *Op) {
		for _, h := range p.Hints[op.HintOff : op.HintOff+op.HintN] {
			if h < 0 {
				h = -h
			}
			if idx, ok := c.lookup(h); ok {
				c.coreMark[idx] = true
			}
		}
	}
	markHints(&p.Ops[finalOp])
	for oi := finalOp - 1; oi >= 0; oi-- {
		op := &p.Ops[oi]
		if op.Del || !c.coreMark[c.opDense[oi]] {
			continue
		}
		markHints(op)
	}
	core := make([]int32, 0, 16)
	vars := 0
	// The assignment is empty here (undoTo(0) above), so val doubles as the
	// distinct-variable scratch; it is wiped again below.
	for idx := int32(0); idx < c.nOrig; idx++ {
		if !c.coreMark[idx] {
			continue
		}
		core = append(core, idx)
		for _, l := range c.slab[c.off[idx] : c.off[idx]+c.clen[idx]] {
			if c.val[l>>1] == 0 {
				c.val[l>>1] = 1
				vars++
			}
		}
	}
	for _, idx := range core {
		for _, l := range c.slab[c.off[idx] : c.off[idx]+c.clen[idx]] {
			c.val[l>>1] = 0
		}
	}
	res.Core = core
	res.CoreVars = vars
}
