package cec

import (
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/circuit"
)

func adder(width int, carrySelect bool, bug bool) *circuit.Circuit {
	c := circuit.New()
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	cin := c.Input("cin")
	var sum []circuit.Signal
	var cout circuit.Signal
	if carrySelect {
		sum, cout = c.CarrySelectAdder(a, b, cin)
	} else {
		sum, cout = c.RippleAdder(a, b, cin)
	}
	if bug {
		sum[width/2] = c.Not(sum[width/2])
	}
	for _, s := range sum {
		c.MarkOutput(s)
	}
	c.MarkOutput(cout)
	return c
}

func TestEquivalentAdders(t *testing.T) {
	v, err := Check(adder(8, false, false), adder(8, true, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equivalent {
		t.Fatal("equivalent adders reported different")
	}
	if v.CheckResult == nil {
		t.Error("UNSAT verdict must carry the proof-check result")
	}
	if v.Counterexample != nil {
		t.Error("equivalent verdict must carry no counterexample")
	}
}

func TestInequivalentAdders(t *testing.T) {
	a := adder(8, false, false)
	v, err := Check(a, adder(8, true, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("buggy adder reported equivalent")
	}
	if v.Counterexample == nil {
		t.Fatal("inequivalent verdict must carry a counterexample")
	}
	if len(v.Counterexample) != len(a.Inputs) {
		t.Errorf("counterexample arity %d, want %d", len(v.Counterexample), len(a.Inputs))
	}
	if v.CheckResult != nil {
		t.Error("SAT verdict should not carry a proof-check result")
	}
}

func TestCheckWithEachMethod(t *testing.T) {
	// Exercise the Method override with the depth-first checker.
	v, err := Check(adder(6, false, false), adder(6, true, false),
		Options{Method: checker.DepthFirst})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equivalent || v.CheckResult.CoreClauses == nil {
		t.Error("depth-first method should yield a core in the check result")
	}
	v, err = Check(adder(6, false, false), adder(6, true, false),
		Options{Method: checker.Hybrid})
	if err != nil || !v.Equivalent {
		t.Fatalf("hybrid method: %+v err=%v", v, err)
	}
}

func TestCheckArityMismatch(t *testing.T) {
	a := circuit.New()
	a.MarkOutput(a.Input("x"))
	b := circuit.New()
	b.Input("x")
	b.Input("y")
	b.MarkOutput(b.Inputs[0])
	if _, err := Check(a, b, Options{}); err == nil {
		t.Error("input arity mismatch accepted")
	}
}
