// Package cec implements combinational equivalence checking with validated
// verdicts — one of the EDA applications the paper's introduction names as
// the reason SAT results must be trustworthy. Two circuits are mitered,
// the difference output is asserted, and the SAT solver decides:
//
//   - UNSAT (equivalent): the claim is proved by replaying the solver's
//     resolution trace through the independent checker;
//   - SAT (inequivalent): the counterexample input vector is validated by
//     simulating both circuits.
//
// Either way the verdict returned to the caller is machine-checked, never
// taken on the solver's word.
package cec

import (
	"fmt"

	"satcheck/internal/checker"
	"satcheck/internal/circuit"
	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// Verdict is the outcome of an equivalence check.
type Verdict struct {
	// Equivalent is the machine-validated answer.
	Equivalent bool
	// Counterexample holds an input vector distinguishing the circuits when
	// Equivalent is false (values in the shared input order).
	Counterexample []bool
	// SolverStats and CheckResult document the work done; CheckResult is
	// nil for SAT (inequivalent) outcomes.
	SolverStats solver.Stats
	CheckResult *checker.Result
}

// Options configures a check.
type Options struct {
	// Solver configures the underlying CDCL solver.
	Solver solver.Options
	// Method selects the checker traversal for UNSAT validation; nil means
	// the breadth-first checker.
	Method func(f *cnf.Formula, src trace.Source, opts checker.Options) (*checker.Result, error)
}

// Check decides whether circuits a and b are equivalent, with the verdict
// validated as described in the package comment. The circuits must have
// matching input and output counts (inputs pair by declaration order).
func Check(a, b *circuit.Circuit, opts Options) (*Verdict, error) {
	m, diff, err := circuit.Miter(a, b)
	if err != nil {
		return nil, err
	}
	enc := circuit.Encode(m)
	enc.Assert(diff, true)

	s, err := solver.New(enc.F, opts.Solver)
	if err != nil {
		return nil, err
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	st, err := s.Solve()
	if err != nil {
		return nil, err
	}
	v := &Verdict{SolverStats: s.Stats()}
	switch st {
	case solver.StatusUnsat:
		check := opts.Method
		if check == nil {
			check = checker.BreadthFirst
		}
		res, err := check(enc.F, mt, checker.Options{})
		if err != nil {
			return nil, fmt.Errorf("cec: solver claimed equivalence but the proof does not check: %w", err)
		}
		v.Equivalent = true
		v.CheckResult = res
		return v, nil
	case solver.StatusSat:
		inputs := enc.ExtractInputs(m, s.Model())
		va, err := a.Eval(inputs)
		if err != nil {
			return nil, err
		}
		vb, err := b.Eval(inputs)
		if err != nil {
			return nil, err
		}
		differs := false
		for i := range a.Outputs {
			if va[a.Outputs[i]-1] != vb[b.Outputs[i]-1] {
				differs = true
				break
			}
		}
		if !differs {
			return nil, fmt.Errorf("cec: solver claimed inequivalence but the counterexample does not distinguish the circuits")
		}
		v.Counterexample = inputs
		return v, nil
	default:
		return nil, fmt.Errorf("cec: solver returned %v", st)
	}
}
