package checker

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// Parallel validates an UNSAT trace with the hybrid strategy's build set on
// a worker pool. The paper's clause-ID convention (every resolve source has
// a smaller ID than the clause it derives) makes the derivation a DAG whose
// independent chains can be verified concurrently; the checkers' sequential
// replay leaves that parallelism on the table.
//
// The sequential phases are the hybrid checker's, shared code and shared
// diagnostics: a structural scan validates the trace shape, and the backward
// mark pass computes exactly the clauses the empty-clause derivation can
// reach plus each one's use count. Two things differ. First, the source
// lists of the learned clauses are sharded into a flat in-memory index
// during the scan (one slice per clause, one backing array) instead of
// spilled to disk, so workers index the trace without ever contending on the
// reader. Second, the marked clauses are then built by Options.Parallelism
// workers scheduled by the dependency DAG: every marked clause carries an
// atomic pending-source count, completing a clause decrements its
// dependents' counts, and a clause whose count hits zero becomes ready —
// kept worker-local when possible for cache locality, handed to a shared
// queue otherwise. Use counts are decremented atomically as builds consume
// their sources, evicting each clause from the deterministic 4-bytes/literal
// memory model the moment its last use completes (breadth-first's
// discipline), with the concurrent high-water mark maintained by
// compare-and-swap. Workers resolve through caller-owned ping-pong scratch
// buffers (resolve.ResolventInto) and copy finished clauses into per-worker
// bump-allocated arenas, so the hot path performs no per-step allocation and
// built clauses never become individual GC objects.
//
// Failure diagnostics are byte-identical to Hybrid's. A failed chain does
// not abort the run: the failure is recorded, the clause's dependents are
// skipped (they release their source claims but build nothing), and clauses
// with IDs above the smallest recorded failure stop being built. When the
// DAG drains, the failure with the smallest clause ID is returned — provably
// the same first failure the sequential hybrid scan reports, because every
// clause with a smaller ID builds identically in both. The one exception is
// FailMemoryLimit under Options.MemLimitWords: the concurrent peak is
// schedule-dependent, so *which* clause trips a tight memory budget can
// differ from Hybrid's sequential order (the verdict still cannot: a run
// that fits the budget on every schedule is bounded by
// Result.PeakMemBoundWords, which is deterministic).
func Parallel(f *cnf.Formula, src trace.Source, opts Options) (*Result, error) {
	p := &parChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	seq := memModel{limit: opts.MemLimitWords}
	intr := poller{fn: opts.Interrupt}
	if err := seq.add(int64(f.NumLiterals())); err != nil {
		return nil, err
	}

	// Pre-size the sharded source index with one cheap counting pass so the
	// structural scan below appends into exactly-sized arrays; repeated
	// growth of the flat index otherwise dominates the checker's allocation
	// profile (and with it, GC sweep time shared across the workers).
	preSrc, preLearned := int64(0), 0
	if err := scanTrace(src, &intr, func(ev trace.Event) error {
		if ev.Kind == trace.KindLearned {
			preLearned++
			preSrc += int64(len(ev.Sources))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	p.flat = make([]int32, 0, preSrc)
	p.srcOff = make([]int64, 0, preLearned+1)

	// Phase 1 (sequential, shared with Hybrid): validate trace structure and
	// shard the learned-clause source lists into the in-memory index.
	p.srcOff = append(p.srcOff, 0)
	var err error
	p.numL, p.finalID, p.level0, err = structuralScan(src, p.nOrig, &intr, &seq,
		func(ev trace.Event) error {
			if ev.ID > math.MaxInt32 {
				return failf(FailTrace, ev.ID, -1, "parallel checker supports clause IDs up to %d", math.MaxInt32)
			}
			for _, s := range ev.Sources {
				p.flat = append(p.flat, int32(s))
			}
			p.srcOff = append(p.srcOff, int64(len(p.flat)))
			return seq.add(int64(len(ev.Sources)) + 1)
		})
	if err != nil {
		return nil, err
	}
	p.res.LearnedTotal = p.numL

	// Phase 2 (sequential, shared with Hybrid): the backward mark pass.
	var srcBuf []int
	readSources := func(i int) ([]int, error) {
		seg := p.flat[p.srcOff[i]:p.srcOff[i+1]]
		srcBuf = srcBuf[:0]
		for _, s := range seg {
			srcBuf = append(srcBuf, int(s))
		}
		return srcBuf, nil
	}
	var counts []int32
	p.marked, counts, p.numMarked, p.usedOrig, err = markReachable(
		p.nOrig, p.numL, p.finalID, p.level0, readSources, &seq, &intr)
	if err != nil {
		return nil, err
	}

	l0 := newLevel0Table()
	for _, rec := range p.level0 {
		if err := l0.add(rec.Var, rec.Value, rec.Ante); err != nil {
			return nil, err
		}
	}

	// Scheduling state: per-clause use counts (eviction), pending-source
	// counts (readiness), status, and the reverse-dependency index workers
	// walk to wake dependents.
	p.lits = make([]cnf.Clause, p.numL)
	p.remaining = make([]atomic.Int32, p.numL)
	p.pending = make([]atomic.Int32, p.numL)
	p.status = make([]atomic.Uint32, p.numL)
	for i, c := range counts {
		if c != 0 {
			p.remaining[i].Store(c)
		}
	}
	if err := seq.add(3 * int64(p.numL)); err != nil {
		return nil, err
	}
	if err := p.buildReverseIndex(&seq); err != nil {
		return nil, err
	}

	// Everything from here on is accounted concurrently. setupWords is the
	// deterministic sequential floor; adding every built clause's literals
	// (with no eviction credited) yields the schedule-independent bound.
	p.mem.limit = seq.limit
	p.mem.cur.Store(seq.cur)
	p.mem.peak.Store(seq.peak)
	setupWords := seq.cur

	totalBuiltWords := int64(0)
	if p.numMarked > 0 {
		workers := opts.Parallelism
		if workers <= 0 {
			// Default to the hardware parallelism actually available: running
			// more workers than either GOMAXPROCS or physical CPUs only adds
			// preemption and GC-sweep contention without any extra throughput.
			workers = runtime.GOMAXPROCS(0)
			if n := runtime.NumCPU(); n < workers {
				workers = n
			}
		}
		if workers > p.numMarked {
			workers = p.numMarked
		}
		p.ready = make(chan int32, p.numMarked)
		p.stop = make(chan struct{})
		p.abortCh = make(chan struct{})
		p.minFailID.Store(math.MaxInt64)
		ws := make([]*parWorker, workers)
		for i := range ws {
			ws[i] = &parWorker{p: p}
			ws[i].intr.fn = opts.Interrupt
		}
		// Seed the initial ready set round-robin across the workers' local
		// stacks before any goroutine starts, so startup costs no shared-queue
		// traffic and every worker begins with its own slice of the frontier.
		seeded := 0
		for li := 0; li < p.numL; li++ {
			if p.markedBit(li) && p.pending[li].Load() == 0 {
				w := ws[seeded%workers]
				w.local = append(w.local, int32(li))
				seeded++
			}
		}
		p.wg.Add(workers)
		for _, w := range ws {
			go w.run()
		}
		p.wg.Wait()
		for _, w := range ws {
			p.res.ClausesBuilt += int(w.built)
			p.res.ResolutionSteps += w.steps
			totalBuiltWords += w.builtWords
		}
		if p.firstFail != nil {
			return nil, p.firstFail
		}
		if p.abortErr != nil {
			return nil, p.abortErr
		}
	}

	// Final stage: the sequential empty-clause derivation, exactly as in
	// Hybrid (every worker has exited, so the arrays are quiescent).
	final, err := p.getClause(p.finalID)
	if err != nil {
		return nil, &CheckError{Kind: FailBadSourceRef, ClauseID: p.finalID, Step: -1,
			Detail: "final conflicting clause", Err: err}
	}
	// No copies: arena storage is immutable and survives eviction (consume
	// is memory-model accounting), exactly as in the depth-first checker's
	// final stage.
	p.consume(p.finalID)
	getAnte := func(id int) (cnf.Clause, error) {
		cl, err := p.getClause(id)
		if err != nil {
			return nil, err
		}
		p.consume(id)
		return cl, nil
	}
	if err := finalStage(final, p.finalID, l0, getAnte, func() { p.res.ResolutionSteps++ }); err != nil {
		return nil, err
	}

	p.res.PeakMemWords = p.mem.peak.Load()
	p.res.PeakMemBoundWords = setupWords + totalBuiltWords
	p.res.CoreClauses, p.res.CoreVars = coreFromUsed(f, p.usedOrig)
	return p.res, nil
}

// Learned-clause status values (p.status). A clause is "settled" once its
// status is no longer parPending; parSkipped covers both failed chains and
// chains skipped because a source failed — dependents treat them alike.
const (
	parPending uint32 = iota
	parBuilt
	parSkipped
)

type parChecker struct {
	originals []cnf.Clause
	nOrig     int
	numL      int
	finalID   int
	level0    []trace.Level0Record

	// The sharded trace: learned clause li's sources are
	// flat[srcOff[li]:srcOff[li+1]].
	flat   []int32
	srcOff []int64

	marked    []uint64 // bitmap over learned clauses (mark pass)
	usedOrig  []uint64 // bitmap over original clauses touched by the proof
	numMarked int

	lits      []cnf.Clause    // built literals, by learned index
	remaining []atomic.Int32  // BF-style use counts; 0 = evicted
	pending   []atomic.Int32  // unbuilt marked sources; 0 = ready
	status    []atomic.Uint32 // parPending / parBuilt / parSkipped
	revOff    []int64         // reverse-dependency index: clause li's
	revDst    []int32         // dependents are revDst[revOff[li]:revOff[li+1]]

	ready   chan int32    // clauses whose pending count hit zero
	stop    chan struct{} // closed when every marked clause is settled
	abortCh chan struct{} // closed on the first interrupt
	wg      sync.WaitGroup
	done    atomic.Int64 // settled marked clauses

	minFailID   atomic.Int64 // smallest failing clause ID; gates later builds
	failMu      sync.Mutex
	firstFail   error
	firstFailID int

	abortOnce sync.Once
	abortErr  error

	mem atomicMemModel
	res *Result
}

func (p *parChecker) markedBit(li int) bool {
	return p.marked[li/64]&(1<<uint(li%64)) != 0
}

func (p *parChecker) sourcesOf(li int32) []int32 {
	return p.flat[p.srcOff[li]:p.srcOff[li+1]]
}

func (p *parChecker) revDeps(li int32) []int32 {
	return p.revDst[p.revOff[li]:p.revOff[li+1]]
}

// buildReverseIndex computes each marked clause's pending-source count and
// the reverse edges (source -> dependent) the workers follow on completion.
// Duplicate source occurrences get duplicate edges, so a clause's pending
// count drains exactly when all its source occurrences have settled.
func (p *parChecker) buildReverseIndex(seq *memModel) error {
	revCnt := make([]int32, p.numL)
	totalRev := int64(0)
	for li := 0; li < p.numL; li++ {
		if !p.markedBit(li) {
			continue
		}
		pend := int32(0)
		for _, s := range p.sourcesOf(int32(li)) {
			if int(s) >= p.nOrig {
				revCnt[int(s)-p.nOrig]++
				pend++
				totalRev++
			}
		}
		p.pending[li].Store(pend)
	}
	p.revOff = make([]int64, p.numL+1)
	for i := 0; i < p.numL; i++ {
		p.revOff[i+1] = p.revOff[i] + int64(revCnt[i])
	}
	p.revDst = make([]int32, totalRev)
	cursor := revCnt // reuse as per-source fill cursor
	for i := range cursor {
		cursor[i] = 0
	}
	for li := 0; li < p.numL; li++ {
		if !p.markedBit(li) {
			continue
		}
		for _, s := range p.sourcesOf(int32(li)) {
			if int(s) >= p.nOrig {
				si := int(s) - p.nOrig
				p.revDst[p.revOff[si]+int64(cursor[si])] = int32(li)
				cursor[si]++
			}
		}
	}
	return seq.add(totalRev + 2*int64(p.numL+1))
}

// getClause fetches clause id for a build step or the final stage: original
// clauses from the formula, learned clauses from the built set. The error
// text matches the hybrid checker's exactly — diagnostics are part of the
// equivalence contract.
func (p *parChecker) getClause(id int) (cnf.Clause, error) {
	if id < 0 {
		return nil, fmt.Errorf("negative clause ID %d", id)
	}
	if id < p.nOrig {
		return p.originals[id], nil
	}
	li := id - p.nOrig
	if li < p.numL && p.status[li].Load() == parBuilt && p.remaining[li].Load() > 0 {
		return p.lits[li], nil
	}
	return nil, fmt.Errorf("learned clause %d is not live (unmarked, consumed, or forward reference)", id)
}

// consume registers one use of clause id; the use that exhausts the count
// evicts the clause from the memory model. Callers only consume clauses they
// have finished reading, so remaining can hit zero only after every reader
// is done — eviction is pure accounting, never a dangling read.
func (p *parChecker) consume(id int) {
	if id < p.nOrig {
		return
	}
	li := id - p.nOrig
	if li >= p.numL {
		return
	}
	if p.remaining[li].Add(-1) == 0 {
		p.mem.sub(int64(len(p.lits[li])))
	}
}

func (p *parChecker) recordFailure(id int, err error) {
	for {
		cur := p.minFailID.Load()
		if int64(id) >= cur || p.minFailID.CompareAndSwap(cur, int64(id)) {
			break
		}
	}
	p.failMu.Lock()
	if p.firstFail == nil || id < p.firstFailID {
		p.firstFail, p.firstFailID = err, id
	}
	p.failMu.Unlock()
}

func (p *parChecker) abort(err error) {
	p.abortOnce.Do(func() {
		p.abortErr = err
		close(p.abortCh)
	})
}

// parWorker is one build goroutine: a local LIFO of ready clauses (depth-
// first locality: a clause's first-woken dependent usually resolves against
// it immediately), ping-pong resolution scratch, and a literal arena for
// finished clauses. Statistics stay worker-local until the pool joins.
type parWorker struct {
	p          *parChecker
	local      []int32
	scratch    [2]cnf.Clause
	arena      litArena
	intr       poller
	steps      int64
	built      int64
	builtWords int64
}

func (w *parWorker) run() {
	defer w.p.wg.Done()
	for {
		li, ok := w.take()
		if !ok {
			return
		}
		if !w.process(li) {
			return
		}
	}
}

// take pops the local stack, falling back to the shared queue. The stop
// channel can only close when no clause is queued anywhere (a queued clause
// is unsettled by definition), so no work is ever abandoned.
func (w *parWorker) take() (int32, bool) {
	if n := len(w.local); n > 0 {
		li := w.local[n-1]
		w.local = w.local[:n-1]
		return li, true
	}
	select {
	case li := <-w.p.ready:
		return li, true
	case <-w.p.stop:
		return 0, false
	case <-w.p.abortCh:
		return 0, false
	}
}

// process settles one marked clause: build it (unless a source failed or a
// smaller-ID failure already owns the diagnostic), release its source
// claims, wake dependents, and close the stop channel when it is the last.
// It returns false when the run was interrupted.
func (w *parWorker) process(li int32) bool {
	p := w.p
	if err := w.intr.poll(); err != nil {
		p.abort(err)
		return false
	}
	id := p.nOrig + int(li)
	built := false
	if w.shouldBuild(li, id) {
		failure, interrupted := w.build(li, id)
		switch {
		case interrupted:
			p.abort(failure)
			return false
		case failure != nil:
			p.recordFailure(id, failure)
		default:
			built = true
		}
	}
	if built {
		p.status[li].Store(parBuilt)
	} else {
		p.status[li].Store(parSkipped)
	}
	// Built, failed, or skipped, this clause's claims on its sources are
	// settled now: a failed chain must release its use counts like a
	// successful one consumes them, or the evicted-at-last-use accounting
	// leaks for the rest of the run.
	for _, s := range p.sourcesOf(li) {
		p.consume(int(s))
	}
	for _, d := range p.revDeps(li) {
		if p.pending[d].Add(-1) == 0 {
			w.enqueue(d)
		}
	}
	if p.done.Add(1) == int64(p.numMarked) {
		close(p.stop)
	}
	return true
}

func (w *parWorker) shouldBuild(li int32, id int) bool {
	p := w.p
	if int64(id) > p.minFailID.Load() {
		// A failure with a smaller clause ID is already recorded; hybrid
		// would have stopped before reaching this clause, so skip it (its
		// own failure, if any, could never be the reported one — the
		// recorded minimum only decreases).
		return false
	}
	for _, s := range p.sourcesOf(li) {
		if int(s) >= p.nOrig && p.status[int(s)-p.nOrig].Load() != parBuilt {
			return false // poisoned: a source failed or was skipped
		}
	}
	return true
}

// build replays clause id's resolution chain. Sources are read without
// copies: a source's remaining count includes this clause's uses and is only
// decremented after the chain settles, so the storage cannot be evicted
// under the reader.
func (w *parWorker) build(li int32, id int) (failure error, interrupted bool) {
	p := w.p
	srcs := p.sourcesOf(li)
	cur, err := p.getClause(int(srcs[0]))
	if err != nil {
		return &CheckError{Kind: FailBadSourceRef, ClauseID: id, Step: 0, Err: err}, false
	}
	for i, s := range srcs[1:] {
		if err := w.intr.poll(); err != nil {
			return err, true
		}
		next, err := p.getClause(int(s))
		if err != nil {
			return &CheckError{Kind: FailBadSourceRef, ClauseID: id, Step: i + 1, Err: err}, false
		}
		// Sorted-input fast path: every operand is a normalized original or a
		// stored resolvent, both canonical by construction.
		resv, _, rerr := resolve.ResolventIntoSorted(w.scratch[i%2], cur, next)
		if rerr != nil {
			return &CheckError{Kind: FailResolution, ClauseID: id, Step: i + 1,
				Detail: fmt.Sprintf("resolving with source %d", s), Err: rerr}, false
		}
		w.scratch[i%2] = resv
		cur = resv
		w.steps++
	}
	lits := w.arena.clone(cur)
	p.lits[li] = lits
	w.built++
	w.builtWords += int64(len(lits))
	if err := p.mem.add(int64(len(lits))); err != nil {
		return err, false
	}
	return nil, false
}

// enqueue places a newly-ready clause. It stays on this worker's local stack
// — it usually resolves against the clause just built, still hot in cache,
// and the fast path then touches no shared state at all — except when the
// shared queue has run dry while this worker holds other local work, in
// which case it is handed over so idle workers never starve behind a busy
// one's stack. Each clause is enqueued exactly once, so the buffered queue
// (capacity numMarked) can never block a send.
func (w *parWorker) enqueue(d int32) {
	if len(w.local) > 0 && len(w.p.ready) == 0 {
		w.p.ready <- d
		return
	}
	w.local = append(w.local, d)
}

// litArena bump-allocates clause storage in large blocks, so the thousands
// of built clauses a proof produces cost one GC object per block instead of
// one each. Blocks are append-only and never reused: an evicted clause's
// storage stays valid (eviction is memory-model accounting), which is what
// lets the final stage and late readers run without copies.
type litArena struct {
	block []cnf.Lit
}

const arenaBlockLits = 1 << 14

func (a *litArena) clone(c cnf.Clause) cnf.Clause {
	n := len(c)
	if n == 0 {
		return cnf.Clause{}
	}
	if n > len(a.block) {
		size := arenaBlockLits
		if n > size {
			size = n
		}
		a.block = make([]cnf.Lit, size)
	}
	dst := cnf.Clause(a.block[:n:n])
	a.block = a.block[n:]
	copy(dst, c)
	return dst
}

// atomicMemModel is the deterministic memory accounting of memModel with a
// CAS-maintained concurrent high-water mark, for the phase where workers
// add and evict clauses in parallel.
type atomicMemModel struct {
	cur, peak atomic.Int64
	limit     int64
}

func (m *atomicMemModel) add(words int64) error {
	c := m.cur.Add(words)
	for {
		p := m.peak.Load()
		if c <= p || m.peak.CompareAndSwap(p, c) {
			break
		}
	}
	if m.limit > 0 && c > m.limit {
		return failf(FailMemoryLimit, trace.NoClause, -1,
			"memory model exceeded %d words (at %d)", m.limit, c)
	}
	return nil
}

func (m *atomicMemModel) sub(words int64) { m.cur.Add(-words) }
