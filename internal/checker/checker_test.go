package checker

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/testutil"
	"satcheck/internal/trace"
)

// solveUnsat solves f and returns its trace; it fails the test unless f is
// UNSAT.
func solveUnsat(t *testing.T, f *cnf.Formula, opts solver.Options) (*trace.MemoryTrace, solver.Stats) {
	t.Helper()
	s, err := solver.New(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.StatusUnsat {
		t.Fatalf("expected UNSAT, got %v", st)
	}
	return mt, s.Stats()
}

// php returns the pigeonhole formula PHP(holes+1, holes).
func php(holes int) *cnf.Formula {
	pigeons := holes + 1
	f := cnf.NewFormula(pigeons * holes)
	v := func(p, h int) int { return p*holes + h + 1 }
	for p := 0; p < pigeons; p++ {
		cl := make([]int, holes)
		for h := range cl {
			cl[h] = v(p, h)
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

type method struct {
	name  string
	check func(*cnf.Formula, trace.Source, Options) (*Result, error)
}

func methods() []method {
	return []method{
		{"depth-first", DepthFirst},
		{"breadth-first", BreadthFirst},
		{"hybrid", Hybrid},
		{"parallel", Parallel},
	}
}

func TestAcceptsValidProofs(t *testing.T) {
	f := php(5)
	mt, stats := solveUnsat(t, f, solver.Options{})
	for _, m := range methods() {
		res, err := m.check(f, mt, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if res.LearnedTotal != int(stats.Learned) {
			t.Errorf("%s: LearnedTotal = %d, want %d", m.name, res.LearnedTotal, stats.Learned)
		}
		if res.ResolutionSteps == 0 {
			t.Errorf("%s: no resolution steps counted", m.name)
		}
	}
}

// TestRandomUnsatProofsAllConfigs is the central soundness/completeness
// property: for random UNSAT formulas under every solver configuration,
// every checker accepts the trace.
func TestRandomUnsatProofsAllConfigs(t *testing.T) {
	configs := []solver.Options{
		{},
		{DisableMinimize: true},
		{RecursiveMinimize: true},
		{DisableRestarts: true, DisableReduce: true},
		{RestartBase: 1},
		{RecursiveMinimize: true, RestartBase: 1},
		{DisableMinimize: true, DisablePhaseSaving: true},
	}
	rng := rand.New(rand.NewSource(77))
	checked := 0
	prop := func() bool {
		f := testutil.RandomFormula(rng, 8, 35, 3)
		if sat, _ := testutil.BruteForceSat(f); sat {
			return true
		}
		opts := configs[rng.Intn(len(configs))]
		mt, _ := solveUnsat(t, f, opts)
		for _, m := range methods() {
			if _, err := m.check(f, mt, Options{}); err != nil {
				t.Logf("%s rejected valid proof of %s: %v", m.name, cnf.DimacsString(f), err)
				return false
			}
		}
		checked++
		return true
	}
	if err := quick.Check(func() bool { return prop() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if checked < 50 {
		t.Errorf("only %d UNSAT formulas exercised; generator drifted", checked)
	}
}

func TestEmptyClauseInInput(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(1, 2)
	f.Add(cnf.Clause{})
	mt, _ := solveUnsat(t, f, solver.Options{})
	for _, m := range methods() {
		res, err := m.check(f, mt, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if res.ResolutionSteps != 0 {
			t.Errorf("%s: empty input clause needs no resolutions, did %d", m.name, res.ResolutionSteps)
		}
	}
}

func TestBCPOnlyRefutation(t *testing.T) {
	// UNSAT purely at level 0: no learned clauses at all.
	f := cnf.NewFormula(3)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-1, 3)
	f.AddClause(-2, -3)
	mt, stats := solveUnsat(t, f, solver.Options{})
	if stats.Learned != 0 {
		t.Fatalf("expected pure BCP refutation, learned %d", stats.Learned)
	}
	for _, m := range methods() {
		res, err := m.check(f, mt, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if res.ClausesBuilt != 0 {
			t.Errorf("%s: built %d clauses with an empty trace", m.name, res.ClausesBuilt)
		}
	}
}

func TestDepthFirstCore(t *testing.T) {
	// PHP plus irrelevant satisfiable padding: the core must not contain
	// padding clauses, and must itself be UNSAT.
	f := php(4)
	base := f.NumClauses()
	pad := f.NumVars
	for i := 1; i <= 5; i++ {
		f.AddClause(pad+i, pad+i+1) // satisfiable chain over fresh vars
	}
	mt, _ := solveUnsat(t, f, solver.Options{})
	res, err := DepthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoreClauses) == 0 {
		t.Fatal("no core returned")
	}
	for _, id := range res.CoreClauses {
		if id >= base {
			t.Errorf("core contains padding clause %d", id)
		}
	}
	sub, err := f.SubFormula(res.CoreClauses)
	if err != nil {
		t.Fatal(err)
	}
	if sat, _ := testutil.BruteForceSat(sub); sat {
		t.Error("extracted core is satisfiable")
	}
	if res.CoreVars <= 0 || res.CoreVars > f.NumVars {
		t.Errorf("CoreVars = %d out of range", res.CoreVars)
	}
}

func TestHybridCoreIsUnsatSuperset(t *testing.T) {
	f := php(4)
	mt, _ := solveUnsat(t, f, solver.Options{})
	dfRes, err := DepthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hyRes, err := Hybrid(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dfSet := map[int]bool{}
	for _, id := range dfRes.CoreClauses {
		dfSet[id] = true
	}
	hySet := map[int]bool{}
	for _, id := range hyRes.CoreClauses {
		hySet[id] = true
	}
	for id := range dfSet {
		if !hySet[id] {
			t.Errorf("hybrid core misses depth-first core clause %d", id)
		}
	}
	sub, err := f.SubFormula(hyRes.CoreClauses)
	if err != nil {
		t.Fatal(err)
	}
	if sat, _ := testutil.BruteForceSat(sub); sat {
		t.Error("hybrid core is satisfiable")
	}
}

func TestBreadthFirstHasNoCore(t *testing.T) {
	f := php(4)
	mt, _ := solveUnsat(t, f, solver.Options{})
	res, err := BreadthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreClauses != nil {
		t.Error("breadth-first should not claim a core")
	}
}

func TestBuiltStatistics(t *testing.T) {
	f := php(6)
	mt, stats := solveUnsat(t, f, solver.Options{})
	df, err := DepthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BreadthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Hybrid(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := int(stats.Learned)
	if bf.ClausesBuilt != total {
		t.Errorf("breadth-first built %d, want all %d", bf.ClausesBuilt, total)
	}
	if df.ClausesBuilt > total || df.ClausesBuilt <= 0 {
		t.Errorf("depth-first built %d of %d", df.ClausesBuilt, total)
	}
	if hy.ClausesBuilt < df.ClausesBuilt || hy.ClausesBuilt > total {
		t.Errorf("hybrid built %d, want in [%d,%d]", hy.ClausesBuilt, df.ClausesBuilt, total)
	}
	if f := df.BuiltFraction(); f <= 0 || f > 1 {
		t.Errorf("BuiltFraction = %v", f)
	}
	if bf.PeakMemWords >= df.PeakMemWords {
		t.Errorf("breadth-first peak %d not below depth-first peak %d", bf.PeakMemWords, df.PeakMemWords)
	}
}

func TestMemoryLimit(t *testing.T) {
	f := php(6)
	mt, _ := solveUnsat(t, f, solver.Options{})
	bfUnlimited, err := BreadthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A budget below DF's needs but above BF's: DF must fail with the
	// structured memory diagnostic, BF must pass — the paper's Table 2 “*”.
	budget := bfUnlimited.PeakMemWords * 2
	var ce *CheckError
	_, err = DepthFirst(f, mt, Options{MemLimitWords: budget})
	if !errors.As(err, &ce) || ce.Kind != FailMemoryLimit {
		t.Errorf("depth-first under budget %d: err = %v, want FailMemoryLimit", budget, err)
	}
	if _, err := BreadthFirst(f, mt, Options{MemLimitWords: budget}); err != nil {
		t.Errorf("breadth-first under same budget failed: %v", err)
	}
}

func TestCountsOnDiskMatchesInMemory(t *testing.T) {
	f := php(5)
	mt, _ := solveUnsat(t, f, solver.Options{})
	inMem, err := BreadthFirst(f, mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range []int{1, 7, 1 << 20} {
		onDisk, err := BreadthFirst(f, mt, Options{CountsOnDisk: true, CountRange: rng})
		if err != nil {
			t.Fatalf("CountRange=%d: %v", rng, err)
		}
		if onDisk.ClausesBuilt != inMem.ClausesBuilt || onDisk.ResolutionSteps != inMem.ResolutionSteps {
			t.Errorf("CountRange=%d: built/steps %d/%d, want %d/%d",
				rng, onDisk.ClausesBuilt, onDisk.ResolutionSteps, inMem.ClausesBuilt, inMem.ResolutionSteps)
		}
	}
}

func TestFormulaTraceMismatch(t *testing.T) {
	f := php(4)
	mt, _ := solveUnsat(t, f, solver.Options{})
	g := f.Clone()
	g.AddClause(1, 2) // extra clause shifts learned IDs
	for _, m := range methods() {
		if _, err := m.check(g, mt, Options{}); err == nil {
			t.Errorf("%s accepted a trace for a different formula", m.name)
		}
	}
}

func TestCheckErrorFormatting(t *testing.T) {
	e := &CheckError{Kind: FailResolution, ClauseID: 12, Step: 3, Detail: "boom", Err: errors.New("inner")}
	msg := e.Error()
	for _, want := range []string{"invalid-resolution", "clause 12", "step 3", "boom", "inner"} {
		if !containsStr(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Error("Unwrap broken")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFailureKindStrings(t *testing.T) {
	kinds := []FailureKind{FailTrace, FailBadSourceRef, FailResolution,
		FailNotConflicting, FailBadAntecedent, FailNotEmpty, FailMemoryLimit}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}

func TestLevel0TableDuplicate(t *testing.T) {
	l0 := newLevel0Table()
	if err := l0.add(3, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := l0.add(3, false, 2); err == nil {
		t.Error("duplicate level-0 variable accepted")
	}
}

func TestValidateAntecedentRejections(t *testing.T) {
	l0 := newLevel0Table()
	// pos 0: var 1 true with ante 0; pos 1: var 2 false; pos 2: var 3 true.
	if err := l0.add(1, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := l0.add(2, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := l0.add(3, true, 2); err != nil {
		t.Fatal(err)
	}
	cl := func(lits ...int) cnf.Clause {
		c := make(cnf.Clause, 0, len(lits))
		for _, d := range lits {
			c = append(c, cnf.LitFromDimacs(d))
		}
		out, _ := c.Normalize()
		return out
	}
	rec3 := l0.recs[3]
	cases := map[string]cnf.Clause{
		"missing implied literal":  cl(-1, 2),   // no literal of var 3
		"false literal of own var": cl(3, -3),   // contains both (tautology): has -3
		"unassigned other literal": cl(3, 9),    // var 9 not at level 0
		"true other literal":       cl(3, -2),   // -2 is true (var 2 false)
		"later-assigned literal":   cl(3, -3+6), // placeholder replaced below
	}
	delete(cases, "later-assigned literal")
	for name, ante := range cases {
		if err := validateAntecedent(ante, 99, 3, rec3, l0); err == nil {
			t.Errorf("%s: accepted %s as antecedent of var 3", name, ante)
		}
	}
	// Later-assigned: antecedent of var 1 (pos 0) contains literal of var 2
	// (pos 1 >= pos 0).
	rec1 := l0.recs[1]
	if err := validateAntecedent(cl(1, 2), 99, 1, rec1, l0); err == nil {
		t.Error("antecedent with later-assigned literal accepted")
	}
	// A genuinely valid antecedent passes: var 3 true, other literal 2
	// (false since var 2 = false, assigned earlier).
	if err := validateAntecedent(cl(3, 2), 99, 3, rec3, l0); err != nil {
		t.Errorf("valid antecedent rejected: %v", err)
	}
}

// TestRecursiveMinimizationProofsOnHardInstance runs the recursive-
// minimization solver on a search-heavy instance and validates the proof
// with every checker — the end-to-end version of the solver package's
// replay test, covering the final level-0 stage too.
func TestRecursiveMinimizationProofsOnHardInstance(t *testing.T) {
	f := php(6)
	mt, stats := solveUnsat(t, f, solver.Options{RecursiveMinimize: true})
	if stats.Minimized == 0 {
		t.Fatal("recursive minimization never fired on PHP")
	}
	for _, m := range methods() {
		if _, err := m.check(f, mt, Options{}); err != nil {
			t.Fatalf("%s rejected recursive-minimization proof: %v", m.name, err)
		}
	}
}
