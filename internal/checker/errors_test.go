package checker

import (
	"errors"
	"testing"

	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// mtrace builds an in-memory trace from events.
func mtrace(events ...trace.Event) *trace.MemoryTrace {
	return &trace.MemoryTrace{Events: events}
}

// twoClauseFormula: (1) and (-1) — refutable in one resolution.
func twoClauseFormula() *cnf.Formula {
	f := cnf.NewFormula(1)
	f.AddClause(1)
	f.AddClause(-1)
	return f
}

func TestAllCheckersRejectMalformedTraces(t *testing.T) {
	f := twoClauseFormula()
	bad := map[string]*trace.MemoryTrace{
		"no final conflict": mtrace(
			trace.Event{Kind: trace.KindLearned, ID: 2, Sources: []int{0, 1}},
		),
		"final out of range": mtrace(
			trace.Event{Kind: trace.KindFinalConflict, ID: 99},
		),
		"negative final": mtrace(
			trace.Event{Kind: trace.KindFinalConflict, ID: -1},
		),
		"learned skips an ID": mtrace(
			trace.Event{Kind: trace.KindLearned, ID: 5, Sources: []int{0, 1}},
			trace.Event{Kind: trace.KindFinalConflict, ID: 5},
		),
		"source not earlier": mtrace(
			trace.Event{Kind: trace.KindLearned, ID: 2, Sources: []int{2}},
			trace.Event{Kind: trace.KindFinalConflict, ID: 2},
		),
		"no sources": mtrace(
			trace.Event{Kind: trace.KindLearned, ID: 2, Sources: nil},
			trace.Event{Kind: trace.KindFinalConflict, ID: 2},
		),
		"level0 ante out of range": mtrace(
			trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 50},
			trace.Event{Kind: trace.KindFinalConflict, ID: 1},
		),
		"duplicate level0 var": mtrace(
			trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 0},
			trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: false, Ante: 1},
			trace.Event{Kind: trace.KindFinalConflict, ID: 1},
		),
		"double final conflict": mtrace(
			trace.Event{Kind: trace.KindFinalConflict, ID: 0},
			trace.Event{Kind: trace.KindFinalConflict, ID: 1},
		),
		"resolution without clash": mtrace(
			trace.Event{Kind: trace.KindLearned, ID: 2, Sources: []int{0, 0}},
			trace.Event{Kind: trace.KindFinalConflict, ID: 2},
		),
	}
	for name, mt := range bad {
		for _, m := range methods() {
			_, err := m.check(f, mt, Options{})
			if err == nil {
				t.Errorf("%s: %s accepted", name, m.name)
				continue
			}
			var ce *CheckError
			if !errors.As(err, &ce) {
				t.Errorf("%s: %s returned unstructured error %v", name, m.name, err)
			}
		}
	}
}

// TestFinalStageNotEmptyDetected: a trace whose final derivation stalls
// (level-0 var lacks a usable antecedent chain) is rejected rather than
// accepted or looped.
func TestFinalStageBadAntecedents(t *testing.T) {
	// Formula: (1), (-1 2), (-2). Level-0 propagation: 1, then 2, then
	// conflict on (-2).
	f := cnf.NewFormula(2)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2)
	good := mtrace(
		trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 0},
		trace.Event{Kind: trace.KindLevelZero, Var: 2, Value: true, Ante: 1},
		trace.Event{Kind: trace.KindFinalConflict, ID: 2},
	)
	for _, m := range methods() {
		if _, err := m.check(f, good, Options{}); err != nil {
			t.Fatalf("%s rejected valid hand-built trace: %v", m.name, err)
		}
	}

	// Swap the antecedents: var 2's antecedent (1) implies var 2 only after
	// var 1 is assigned, so claiming it for var 1 must fail.
	swapped := mtrace(
		trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 1},
		trace.Event{Kind: trace.KindLevelZero, Var: 2, Value: true, Ante: 0},
		trace.Event{Kind: trace.KindFinalConflict, ID: 2},
	)
	for _, m := range methods() {
		_, err := m.check(f, swapped, Options{})
		var ce *CheckError
		if !errors.As(err, &ce) || (ce.Kind != FailBadAntecedent && ce.Kind != FailNotConflicting) {
			t.Errorf("%s: swapped antecedents gave %v", m.name, err)
		}
	}

	// Final conflicting clause satisfied by the recorded assignment.
	satisfied := mtrace(
		trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 0},
		trace.Event{Kind: trace.KindLevelZero, Var: 2, Value: true, Ante: 1},
		trace.Event{Kind: trace.KindFinalConflict, ID: 1}, // (-1 2) is true
	)
	for _, m := range methods() {
		_, err := m.check(f, satisfied, Options{})
		var ce *CheckError
		if !errors.As(err, &ce) || ce.Kind != FailNotConflicting {
			t.Errorf("%s: satisfied final clause gave %v", m.name, err)
		}
	}

	// Final conflicting clause with an unassigned literal.
	unassigned := mtrace(
		trace.Event{Kind: trace.KindLevelZero, Var: 1, Value: true, Ante: 0},
		trace.Event{Kind: trace.KindFinalConflict, ID: 1},
	)
	for _, m := range methods() {
		_, err := m.check(f, unassigned, Options{})
		var ce *CheckError
		if !errors.As(err, &ce) || ce.Kind != FailNotConflicting {
			t.Errorf("%s: unassigned final literal gave %v", m.name, err)
		}
	}
}

func TestMemoryLimitBFAndHybrid(t *testing.T) {
	f := php(6)
	mt, _ := solveUnsat(t, f, solver.Options{})
	// A budget below even the formula size: every checker must fail with
	// the structured memory diagnostic.
	for _, m := range methods() {
		_, err := m.check(f, mt, Options{MemLimitWords: 10})
		var ce *CheckError
		if !errors.As(err, &ce) || ce.Kind != FailMemoryLimit {
			t.Errorf("%s under 10-word budget: %v", m.name, err)
		}
	}
}

func TestCountsOnDiskNoLearnedClauses(t *testing.T) {
	// BCP-only refutation: the counting pass sees zero learned clauses.
	f := cnf.NewFormula(2)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2)
	mt, _ := solveUnsat(t, f, solver.Options{})
	res, err := BreadthFirst(f, mt, Options{CountsOnDisk: true, CountRange: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LearnedTotal != 0 || res.ClausesBuilt != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestCountsOnDiskDefaultRange(t *testing.T) {
	f := php(4)
	mt, _ := solveUnsat(t, f, solver.Options{})
	// CountRange 0 takes the default.
	if _, err := BreadthFirst(f, mt, Options{CountsOnDisk: true}); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltFractionZeroLearned(t *testing.T) {
	r := &Result{}
	if r.BuiltFraction() != 0 {
		t.Error("BuiltFraction of empty result must be 0")
	}
	r = &Result{LearnedTotal: 4, ClausesBuilt: 1}
	if r.BuiltFraction() != 0.25 {
		t.Errorf("BuiltFraction = %v", r.BuiltFraction())
	}
}

func TestUnknownFailureKindString(t *testing.T) {
	if FailureKind(99).String() == "" {
		t.Error("unknown kind must render something")
	}
}

// TestHybridTempDirFailure: an unusable temp dir surfaces as an error, not
// a panic.
func TestHybridTempDirFailure(t *testing.T) {
	f := php(4)
	mt, _ := solveUnsat(t, f, solver.Options{})
	_, err := Hybrid(f, mt, Options{TempDir: "/nonexistent/dir/for/sure"})
	if err == nil {
		t.Error("bad TempDir accepted")
	}
	_, err = BreadthFirst(f, mt, Options{CountsOnDisk: true, TempDir: "/nonexistent/dir/for/sure"})
	if err == nil {
		t.Error("bad TempDir accepted by BF counts spill")
	}
}
