package checker

import (
	"fmt"
	"sort"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// DepthFirst validates an UNSAT trace with the depth-first strategy of
// §3.2 (Figure 3): the whole trace is loaded into memory, and learned
// clauses are built recursively, on demand, starting from the final
// conflicting clause. Only the clauses involved in the empty-clause
// derivation are ever constructed, and the original clauses touched along
// the way form an unsatisfiable core (Result.CoreClauses).
func DepthFirst(f *cnf.Formula, src trace.Source, opts Options) (*Result, error) {
	data, err := trace.Load(src)
	if err != nil {
		return nil, &CheckError{Kind: FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
	}
	return depthFirstData(f, data, opts)
}

// depthFirstData is the core of DepthFirst, shared with callers that already
// hold a loaded trace (the unsat-core iteration loop).
func depthFirstData(f *cnf.Formula, data *trace.Data, opts Options) (*Result, error) {
	nOrig := len(f.Clauses)
	if data.FirstLearned != -1 && data.FirstLearned != nOrig {
		return nil, failf(FailTrace, data.FirstLearned, -1,
			"first learned clause ID %d does not follow the %d original clauses", data.FirstLearned, nOrig)
	}

	d := &dfChecker{
		originals: normalizeOriginals(f),
		data:      data,
		built:     make([]cnf.Clause, data.NumLearned()),
		usedOrig:  make([]bool, nOrig),
		res:       &Result{LearnedTotal: data.NumLearned()},
	}
	d.mem.limit = opts.MemLimitWords
	d.intr.fn = opts.Interrupt

	// The depth-first checker holds the entire trace in memory: account for
	// it (this is exactly what makes DF memory-hungry in Table 2).
	traceWords := int64(0)
	for _, srcs := range data.LearnedSources {
		traceWords += int64(len(srcs)) + 2
	}
	traceWords += 3 * int64(len(data.Level0))
	if err := d.mem.add(traceWords); err != nil {
		return nil, err
	}

	l0 := newLevel0Table()
	for _, rec := range data.Level0 {
		if err := l0.add(rec.Var, rec.Value, rec.Ante); err != nil {
			return nil, err
		}
	}

	final, err := d.build(data.FinalConflict)
	if err != nil {
		return nil, err
	}
	if err := finalStage(final, data.FinalConflict, l0, d.build, func() { d.res.ResolutionSteps++ }); err != nil {
		return nil, err
	}

	d.res.PeakMemWords = d.mem.peak
	d.res.CoreClauses, d.res.CoreVars = d.core(f)
	return d.res, nil
}

type dfChecker struct {
	originals []cnf.Clause
	data      *trace.Data
	built     []cnf.Clause // by id - FirstLearned; nil = not built yet
	usedOrig  []bool
	mem       memModel
	intr      poller
	scratches [][2]cnf.Clause // recycled per-frame ping-pong resolution buffers
	res       *Result
}

// dfFrame is one in-progress recursive_build invocation on the explicit
// stack (proof graphs are deep; Go stacks are not the place for them).
type dfFrame struct {
	id   int
	next int // index of the next resolve source to fold in
	cur  cnf.Clause
	buf  [2]cnf.Clause // this frame's resolution scratch; frames interleave
}

// takeScratch hands a frame a (possibly warm) buffer pair; putScratch
// recycles it when the frame finishes, so a whole run allocates only as many
// scratch pairs as the deepest build chain.
func (d *dfChecker) takeScratch() [2]cnf.Clause {
	if n := len(d.scratches); n > 0 {
		s := d.scratches[n-1]
		d.scratches = d.scratches[:n-1]
		return s
	}
	return [2]cnf.Clause{}
}

func (d *dfChecker) putScratch(s [2]cnf.Clause) {
	d.scratches = append(d.scratches, s)
}

// build returns the clause with the given ID, constructing learned clauses
// by resolution on demand (recursive_build from Figure 3, made iterative).
func (d *dfChecker) build(id int) (cnf.Clause, error) {
	if cl, done, err := d.lookup(id); done {
		if err != nil {
			return nil, &CheckError{Kind: FailBadSourceRef, ClauseID: id, Step: -1, Err: err}
		}
		return cl, nil
	}
	stack := []dfFrame{{id: id, buf: d.takeScratch()}}
	for len(stack) > 0 {
		if err := d.intr.poll(); err != nil {
			return nil, err
		}
		fr := &stack[len(stack)-1]
		srcs := d.data.SourcesOf(fr.id)
		if fr.next >= len(srcs) {
			// All sources folded: the clause is built. Multi-source results
			// live in this frame's scratch and must be copied out; a
			// single-source alias may be stored as-is (built clauses are
			// immutable and never freed).
			cl := fr.cur
			if len(srcs) > 1 {
				cl = cl.Clone()
			}
			if err := d.finish(fr.id, cl); err != nil {
				return nil, err
			}
			d.putScratch(fr.buf)
			stack = stack[:len(stack)-1]
			continue
		}
		sid := srcs[fr.next]
		cl, done, err := d.lookup(sid)
		if err != nil {
			return nil, &CheckError{Kind: FailBadSourceRef, ClauseID: fr.id, Step: fr.next, Err: err}
		}
		if !done {
			stack = append(stack, dfFrame{id: sid, buf: d.takeScratch()})
			continue
		}
		if fr.next == 0 {
			fr.cur = cl
		} else {
			// Ping-pong between the frame's two buffers: dst never aliases
			// cur (the other buffer, or a stored clause on the first step).
			next, _, rerr := resolve.ResolventInto(fr.buf[fr.next%2], fr.cur, cl)
			if rerr != nil {
				return nil, &CheckError{Kind: FailResolution, ClauseID: fr.id, Step: fr.next,
					Detail: fmt.Sprintf("resolving with source %d", sid), Err: rerr}
			}
			fr.buf[fr.next%2] = next
			fr.cur = next
			d.res.ResolutionSteps++
		}
		fr.next++
	}
	cl, _, err := d.lookup(id)
	return cl, err
}

// lookup fetches a clause if it is available without building: an original
// clause, or a learned clause already built. done=false means the learned
// clause exists but has not been built yet.
func (d *dfChecker) lookup(id int) (cnf.Clause, bool, error) {
	if id < 0 {
		return nil, true, fmt.Errorf("negative clause ID %d", id)
	}
	if id < len(d.originals) {
		if !d.usedOrig[id] {
			d.usedOrig[id] = true
		}
		return d.originals[id], true, nil
	}
	i := id - len(d.originals)
	if i >= len(d.built) {
		return nil, true, fmt.Errorf("clause ID %d beyond trace (last learned %d)",
			id, len(d.originals)+len(d.built)-1)
	}
	if d.built[i] != nil {
		return d.built[i], true, nil
	}
	return nil, false, nil
}

// finish records a freshly built learned clause. Depth-first never frees:
// a built clause stays resident (that is the strategy's memory cost).
func (d *dfChecker) finish(id int, cl cnf.Clause) error {
	i := id - len(d.originals)
	if cl == nil {
		cl = cnf.Clause{} // an empty resolvent is a real (empty) clause
	}
	d.built[i] = cl
	d.res.ClausesBuilt++
	return d.mem.add(int64(len(cl)))
}

// core returns the sorted original clause IDs touched by the proof and the
// number of distinct variables they mention (Table 3's per-proof columns).
func (d *dfChecker) core(f *cnf.Formula) ([]int, int) {
	ids := make([]int, 0, 64)
	seenVar := make(map[cnf.Var]struct{})
	for id, used := range d.usedOrig {
		if !used {
			continue
		}
		ids = append(ids, id)
		for _, l := range f.Clauses[id] {
			seenVar[l.Var()] = struct{}{}
		}
	}
	sort.Ints(ids)
	return ids, len(seenVar)
}
