// Package checker implements the paper's independent resolution-based
// checker (§3): given the original CNF formula and the trace produced by an
// instrumented CDCL solver, it verifies that an empty clause is derivable
// from the original clauses by resolution — a proof of unsatisfiability that
// does not trust the solver.
//
// Three traversals of the resolution graph are provided:
//
//   - DepthFirst (§3.2): loads the whole trace, builds only the clauses on
//     the path to the empty clause; fastest, yields an unsatisfiable core as
//     a by-product, but holds the trace and every built clause in memory.
//   - BreadthFirst (§3.3): streams the trace twice; pass 1 counts how often
//     each learned clause is used, pass 2 builds clauses in generation order
//     and evicts each one when its uses are exhausted. Memory never exceeds
//     what the solver itself held. Counts can be kept on disk in ranges for
//     the paper's "even one counter per clause may not fit" regime.
//   - Hybrid (the paper's "future work": both advantages): a backward mark
//     phase over on-disk spill files computes exactly the clauses the
//     empty-clause derivation can reach, then a breadth-first pass builds
//     only those, with use-count eviction.
//
// All traversals validate every single step: resolutions must have exactly
// one clashing variable, claimed antecedents must really be antecedents, the
// final conflicting clause must be falsified by the recorded level-0
// assignment, and the derivation must terminate in the empty clause.
// Failures carry structured diagnostics (FailureKind, clause IDs, detail)
// for debugging the solver, as §3.2 prescribes.
//
// Concurrency: the checkers never mutate the formula or the trace. Every
// original clause is cloned before normalization (normalizeOriginals) and
// trace sources are only read through fresh Reader passes, so DepthFirst,
// BreadthFirst and Hybrid are safe to call from many goroutines over a
// shared *cnf.Formula and a shared trace.Source — the contract the zcheckd
// worker pool relies on (proved under -race by TestCheckersConcurrent).
package checker

import (
	"errors"
	"fmt"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// FailureKind classifies why checking failed; it tells the solver developer
// where to look for the bug.
type FailureKind int

// Failure kinds.
const (
	// FailTrace: the trace itself is malformed (bad IDs, missing records).
	FailTrace FailureKind = iota + 1
	// FailBadSourceRef: a resolve source references a clause that does not
	// exist (or, breadth-first, was already consumed).
	FailBadSourceRef
	// FailResolution: a resolution step does not have exactly one clashing
	// variable.
	FailResolution
	// FailNotConflicting: the final conflicting clause is not falsified by
	// the recorded level-0 assignment.
	FailNotConflicting
	// FailBadAntecedent: a clause recorded as a variable's antecedent is not
	// a valid antecedent (not unit on that variable under the earlier
	// assignments).
	FailBadAntecedent
	// FailNotEmpty: the final derivation stopped without reaching the empty
	// clause.
	FailNotEmpty
	// FailMemoryLimit: the checker exceeded its configured memory budget
	// (the paper's depth-first "memory out" rows).
	FailMemoryLimit
	// FailRUP: a clausal (DRUP/DRAT) lemma is neither RUP nor RAT — unit
	// propagation under its negation does not conflict, and no resolution
	// candidate on the pivot rescues it.
	FailRUP
	// FailHint: an LRAT hint does not drive unit propagation as claimed
	// (the hinted clause is neither unit nor conflicting when consumed).
	FailHint
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailTrace:
		return "malformed-trace"
	case FailBadSourceRef:
		return "bad-source-reference"
	case FailResolution:
		return "invalid-resolution"
	case FailNotConflicting:
		return "final-clause-not-conflicting"
	case FailBadAntecedent:
		return "invalid-antecedent"
	case FailNotEmpty:
		return "derivation-not-empty"
	case FailMemoryLimit:
		return "memory-limit"
	case FailRUP:
		return "rup-check-failed"
	case FailHint:
		return "bad-lrat-hint"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// CheckError is the structured diagnostic produced when validation fails:
// "Check Failed" plus as much information as possible about the failure to
// help debug the solver.
type CheckError struct {
	Kind     FailureKind
	ClauseID int    // clause being built, or NoClause
	Step     int    // resolution step index within that clause, or -1
	Detail   string // human-readable specifics
	Err      error  // underlying error, if any
}

// Error implements error.
func (e *CheckError) Error() string {
	msg := fmt.Sprintf("check failed [%s]", e.Kind)
	if e.ClauseID >= 0 {
		msg += fmt.Sprintf(" clause %d", e.ClauseID)
	}
	if e.Step >= 0 {
		msg += fmt.Sprintf(" step %d", e.Step)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying error for errors.Is/As.
func (e *CheckError) Unwrap() error { return e.Err }

func failf(kind FailureKind, clauseID, step int, format string, args ...any) *CheckError {
	return &CheckError{Kind: kind, ClauseID: clauseID, Step: step, Detail: fmt.Sprintf(format, args...)}
}

// Options configures a checking run.
type Options struct {
	// MemLimitWords bounds the checker's deterministic memory model
	// (4-byte words: clause literals, trace integers, counters). 0 means
	// unlimited. Exceeding it aborts with FailMemoryLimit, reproducing the
	// paper's depth-first memory-out rows under an 800MB-style budget.
	MemLimitWords int64
	// CountsOnDisk makes the breadth-first checker keep use counts in a
	// temporary file, computed in ranges of CountRange clauses per counting
	// pass (§3.3: "the clause's total use count is stored in a temporary
	// file ... we may also need to break the first pass into several
	// passes").
	CountsOnDisk bool
	// CountRange is the number of clause counters processed per counting
	// pass when CountsOnDisk is set (default 1<<20).
	CountRange int
	// TempDir overrides the directory for spill files (default os.TempDir).
	TempDir string
	// Interrupt, when non-nil, is polled periodically inside the checking
	// loops; a non-nil return aborts the run with that error. Long-lived
	// callers pass a context's Err method to give each job a deadline
	// (ctx.Err is safe to call from any goroutine).
	Interrupt func() error
	// Parallelism sets the worker count of the Parallel checker; 0 or
	// negative means runtime.GOMAXPROCS(0). The sequential checkers ignore
	// it.
	Parallelism int
	// MemBudgetBytes sizes the out-of-core checker's windows (internal/ooc):
	// resident metadata plus any single window's parse, imports, and kernel
	// state are planned to fit inside it. 0 means the ooc default (256MiB).
	// Checkers other than ooc ignore it; unlike MemLimitWords it is a
	// planning target, not a mid-run abort threshold.
	MemBudgetBytes int64
}

// interruptEvery is how many loop iterations pass between Interrupt polls —
// frequent enough that deadlines bite within microseconds, rare enough to
// stay invisible in profiles.
const interruptEvery = 1024

// poller amortizes Options.Interrupt checks over checker loop iterations.
type poller struct {
	fn func() error
	n  int
}

func (p *poller) poll() error {
	if p.fn == nil {
		return nil
	}
	if p.n++; p.n%interruptEvery != 0 {
		return nil
	}
	return p.fn()
}

// Result reports a successful validation together with the statistics the
// paper's Table 2 and Table 3 are built from.
type Result struct {
	// LearnedTotal is the number of learned clauses recorded in the trace.
	LearnedTotal int
	// ClausesBuilt is the number of learned clauses the checker actually
	// constructed ("Num. Cls Built"). Breadth-first always builds all.
	ClausesBuilt int
	// ResolutionSteps counts validated resolution steps.
	ResolutionSteps int64
	// PeakMemWords is the peak of the deterministic memory model in 4-byte
	// words: live clause literals + trace integers held + counters.
	PeakMemWords int64
	// PeakMemBoundWords, reported by the Parallel checker only, is the
	// deterministic upper bound its concurrent high-water mark is guaranteed
	// to stay within regardless of worker schedule: the sequential setup
	// words (originals, in-memory source lists, mark structures, scheduling
	// arrays) plus the literals of every built clause with no eviction
	// credited. PeakMemWords <= PeakMemBoundWords always holds; the bound is
	// what a memory budget should be compared against when the schedule-
	// dependent peak must not matter. Zero for the sequential checkers,
	// whose PeakMemWords is already schedule-free. The out-of-core checker
	// reports its configured byte budget (Options.MemBudgetBytes) in words
	// here and enforces it as a hard ceiling on its model, so the
	// invariant holds there too.
	PeakMemBoundWords int64
	// CoreClauses lists the original clause IDs involved in the proof, in
	// increasing order (depth-first and hybrid only) — the unsatisfiable
	// core of §4/Table 3.
	CoreClauses []int
	// CoreVars counts the distinct variables occurring in CoreClauses.
	CoreVars int
	// OOCWindows is the number of proof windows the out-of-core checker
	// actually ran (zero for every other checker).
	OOCWindows int
	// SpilledClauses counts learned clauses the out-of-core checker wrote
	// to its disk spill index because a later window references them.
	SpilledClauses int64
	// SpilledBytes is the total size of the spill records written.
	SpilledBytes int64
}

// BuiltFraction returns ClausesBuilt/LearnedTotal, the paper's "Built%".
func (r *Result) BuiltFraction() float64 {
	if r.LearnedTotal == 0 {
		return 0
	}
	return float64(r.ClausesBuilt) / float64(r.LearnedTotal)
}

// memModel is the deterministic memory accounting shared by the checkers.
type memModel struct {
	cur, peak int64
	limit     int64
}

func (m *memModel) add(words int64) error {
	m.cur += words
	if m.cur > m.peak {
		m.peak = m.cur
	}
	if m.limit > 0 && m.cur > m.limit {
		return failf(FailMemoryLimit, trace.NoClause, -1,
			"memory model exceeded %d words (at %d)", m.limit, m.cur)
	}
	return nil
}

func (m *memModel) sub(words int64) { m.cur -= words }

// level0Rec is one recorded level-0 assignment.
type level0Rec struct {
	value bool
	set   bool // slot occupied (the table is a flat slice, not a map)
	ante  int
	pos   int // chronological index in the trace
}

// level0Table indexes the trace's level-0 assignments by variable.
// Variables are dense small integers, so a flat slice grown on demand beats
// a map here: lookups in the final stage's inner loops become a bounds check
// and the per-check table costs one allocation instead of map buckets.
type level0Table struct {
	recs []level0Rec // indexed by variable; set == false means unassigned
	n    int         // number of recorded assignments
}

func newLevel0Table() *level0Table {
	return &level0Table{}
}

func (t *level0Table) add(v cnf.Var, value bool, ante int) error {
	if int(v) >= len(t.recs) {
		grown := make([]level0Rec, int(v)+1)
		copy(grown, t.recs)
		t.recs = grown
	}
	if t.recs[v].set {
		return failf(FailTrace, trace.NoClause, -1, "variable %d assigned at level 0 twice", v)
	}
	t.recs[v] = level0Rec{value: value, set: true, ante: ante, pos: t.n}
	t.n++
	return nil
}

func (t *level0Table) get(v cnf.Var) (level0Rec, bool) {
	if int(v) >= len(t.recs) || !t.recs[v].set {
		return level0Rec{}, false
	}
	return t.recs[v], true
}

// litFalse reports whether literal l is falsified by the recorded level-0
// assignment; ok is false when l's variable is unassigned at level 0.
func (t *level0Table) litFalse(l cnf.Lit) (falsified, ok bool) {
	rec, ok := t.get(l.Var())
	if !ok {
		return false, false
	}
	return rec.value == l.IsNeg(), true
}

// finalStage derives the empty clause from the (already built) final
// conflicting clause, following the proof of Proposition 3: repeatedly pick
// the literal assigned last (reverse chronological order) and resolve with
// its recorded antecedent. getClause materializes antecedent clauses;
// onStep is invoked per resolution for statistics.
//
// Every step is validated: the working clause must stay falsified by the
// level-0 assignment, and each claimed antecedent must genuinely be the
// antecedent of its variable (its literal of the pivot variable is the one
// assigned true; every other literal is falsified strictly earlier).
func finalStage(cl cnf.Clause, confID int, l0 *level0Table,
	getClause func(id int) (cnf.Clause, error), onStep func()) error {

	// The final conflicting clause must have all literals false at level 0.
	for _, l := range cl {
		f, ok := l0.litFalse(l)
		if !ok {
			return failf(FailNotConflicting, confID, -1,
				"literal %s of final conflicting clause is unassigned at level 0", l)
		}
		if !f {
			return failf(FailNotConflicting, confID, -1,
				"literal %s of final conflicting clause is true at level 0", l)
		}
	}

	// Ping-pong scratch for the level-0 resolution chain, same discipline as
	// the build loops: dst never aliases cl (the other buffer or the caller's
	// clause) nor ante (stored clause storage).
	var buf [2]cnf.Clause
	step := 0
	for len(cl) > 0 {
		// choose_literal: reverse chronological order.
		best := -1
		bestPos := -1
		for i, l := range cl {
			rec, _ := l0.get(l.Var()) // present: invariant established below
			if rec.pos > bestPos {
				bestPos = rec.pos
				best = i
			}
		}
		pivotLit := cl[best]
		v := pivotLit.Var()
		rec, _ := l0.get(v)

		ante, err := getClause(rec.ante)
		if err != nil {
			var ce *CheckError
			if errors.As(err, &ce) {
				return err // already a structured diagnostic (e.g. memory limit)
			}
			return &CheckError{Kind: FailBadSourceRef, ClauseID: rec.ante, Step: step,
				Detail: fmt.Sprintf("antecedent of variable %d", v), Err: err}
		}
		if err := validateAntecedent(ante, rec.ante, v, rec, l0); err != nil {
			return err
		}
		next, pivot, err := resolve.ResolventInto(buf[step%2], cl, ante)
		if err == nil && pivot != v {
			err = fmt.Errorf("resolve: expected pivot %d, clauses clash on %d", v, pivot)
		}
		if err != nil {
			return &CheckError{Kind: FailResolution, ClauseID: rec.ante, Step: step,
				Detail: fmt.Sprintf("final-stage resolution on variable %d", v), Err: err}
		}
		buf[step%2] = next
		// Invariant: every literal of `next` is falsified at level 0 with
		// position < bestPos. cl's other literals were checked already;
		// ante's literals were checked by validateAntecedent.
		cl = next
		step++
		if onStep != nil {
			onStep()
		}
	}
	return nil
}

// validateAntecedent checks that ante (with ID anteID) is a valid antecedent
// of variable v under the level-0 assignment: it contains v's true literal,
// and every other literal is falsified by an assignment made strictly before
// v's ("whether it is a unit clause and whether the unit literal corresponds
// to the variable", §3.2).
func validateAntecedent(ante cnf.Clause, anteID int, v cnf.Var, rec level0Rec, l0 *level0Table) error {
	trueLit := cnf.NewLit(v, !rec.value)
	foundUnit := false
	for _, l := range ante {
		if l == trueLit {
			foundUnit = true
			continue
		}
		if l.Var() == v {
			return failf(FailBadAntecedent, anteID, -1,
				"antecedent of variable %d contains its false literal %s", v, l)
		}
		otherRec, ok := l0.get(l.Var())
		if !ok {
			return failf(FailBadAntecedent, anteID, -1,
				"antecedent of variable %d has unassigned literal %s", v, l)
		}
		if otherRec.value != l.IsNeg() {
			return failf(FailBadAntecedent, anteID, -1,
				"antecedent of variable %d has true literal %s", v, l)
		}
		if otherRec.pos >= rec.pos {
			return failf(FailBadAntecedent, anteID, -1,
				"antecedent of variable %d has literal %s assigned later (pos %d >= %d)",
				v, l, otherRec.pos, rec.pos)
		}
	}
	if !foundUnit {
		return failf(FailBadAntecedent, anteID, -1,
			"antecedent of variable %d does not contain its implied literal %s", v, trueLit)
	}
	return nil
}

// normalizeOriginals returns the canonical (sorted, deduplicated) form of
// every original clause; index == clause ID.
func normalizeOriginals(f *cnf.Formula) []cnf.Clause {
	out := make([]cnf.Clause, len(f.Clauses))
	// Already-canonical clauses are shared as-is — the checkers only read
	// originals, so the formula's own storage serves and costs nothing. The
	// rest are copied into one batch-allocated backing array and normalized
	// there: two allocations per check instead of one per clause, which
	// used to dominate per-check setup cost on large formulas.
	extra := 0
	for i, c := range f.Clauses {
		if c.IsSorted() {
			out[i] = c
		} else {
			extra += len(c)
		}
	}
	if extra == 0 {
		return out
	}
	buf := make(cnf.Clause, 0, extra)
	for i, c := range f.Clauses {
		if out[i] != nil || c == nil {
			continue
		}
		start := len(buf)
		buf = append(buf, c...)
		nc, _ := buf[start:len(buf):len(buf)].Normalize()
		out[i] = nc
	}
	return out
}
