package checker

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// BreadthFirst validates an UNSAT trace with the breadth-first strategy of
// §3.3: learned clauses are built in the order they were generated, so every
// resolve source is already available, and a first pass over the trace
// counts how many times each clause is used so it can be deleted from memory
// the moment its last use completes. The checker therefore "will never keep
// more clauses in the memory than the SAT solver did when producing the
// trace".
//
// With Options.CountsOnDisk the counting pass is broken into ranges of
// Options.CountRange clauses and the counts live in a temporary file,
// reproducing the paper's fallback for proofs where even one counter per
// learned clause does not fit in memory.
func BreadthFirst(f *cnf.Formula, src trace.Source, opts Options) (*Result, error) {
	b := &bfChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	b.mem.limit = opts.MemLimitWords
	b.intr.fn = opts.Interrupt
	if err := b.mem.add(int64(f.NumLiterals())); err != nil {
		return nil, err
	}

	counts, err := b.countUses(src, opts)
	if err != nil {
		return nil, err
	}
	defer counts.close()

	if err := b.buildPass(src, counts); err != nil {
		return nil, err
	}
	b.res.PeakMemWords = b.mem.peak
	return b.res, nil
}

type bfChecker struct {
	originals []cnf.Clause
	nOrig     int
	live      map[int]*liveClause
	l0        *level0Table
	mem       memModel
	intr      poller
	scratch   [2]cnf.Clause // ping-pong resolution buffers (resolve.ResolventInto)
	res       *Result
}

type liveClause struct {
	lits      cnf.Clause
	remaining int32
}

// useCounts abstracts where the per-learned-clause use counters live:
// in memory, or streamed from a temp file during the build pass.
type useCounts interface {
	// next returns the use count of the next learned clause in ID order.
	next() (int32, error)
	// total returns the number of learned clauses counted.
	total() int
	close()
}

// countUses runs the counting pass(es). Every reference to a learned clause
// counts: as a resolve source of a later learned clause, as a level-0
// antecedent, and as the final conflicting clause.
func (b *bfChecker) countUses(src trace.Source, opts Options) (useCounts, error) {
	if !opts.CountsOnDisk {
		return b.countInMemory(src)
	}
	return b.countOnDisk(src, opts)
}

func (b *bfChecker) countInMemory(src trace.Source) (useCounts, error) {
	counts := []int32{}
	nextID := b.nOrig
	sawConflict := false
	err := b.scan(src, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindLearned:
			if ev.ID != nextID {
				return failf(FailTrace, ev.ID, -1, "expected learned clause ID %d", nextID)
			}
			if len(ev.Sources) == 0 {
				return failf(FailTrace, ev.ID, -1, "learned clause has no resolve sources")
			}
			nextID++
			counts = append(counts, 0)
			if err := b.mem.add(1); err != nil {
				return err
			}
			for _, s := range ev.Sources {
				if err := bumpCount(counts, b.nOrig, s, ev.ID); err != nil {
					return err
				}
			}
		case trace.KindLevelZero:
			if err := bumpCount(counts, b.nOrig, ev.Ante, nextID); err != nil {
				return err
			}
		case trace.KindFinalConflict:
			if sawConflict {
				return failf(FailTrace, ev.ID, -1, "multiple final-conflict records")
			}
			sawConflict = true
			if err := bumpCount(counts, b.nOrig, ev.ID, nextID); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawConflict {
		return nil, failf(FailTrace, trace.NoClause, -1, "no final-conflict record; trace does not claim UNSAT")
	}
	return &memCounts{counts: counts}, nil
}

// bumpCount increments the counter for clause id if it is learned; original
// clauses stay resident and need no counting. limit is the first not-yet-
// declared learned ID, so forward references are rejected.
func bumpCount(counts []int32, nOrig, id, limit int) error {
	if id < 0 || id >= limit {
		return failf(FailBadSourceRef, id, -1, "reference to undeclared clause (IDs below %d exist)", limit)
	}
	if id >= nOrig {
		counts[id-nOrig]++
	}
	return nil
}

type memCounts struct {
	counts []int32
	pos    int
}

func (m *memCounts) next() (int32, error) {
	if m.pos >= len(m.counts) {
		return 0, io.ErrUnexpectedEOF
	}
	c := m.counts[m.pos]
	m.pos++
	return c, nil
}
func (m *memCounts) total() int { return len(m.counts) }
func (m *memCounts) close()     {}

// countOnDisk computes counts in ranges of opts.CountRange learned clauses
// per pass over the trace, appending each finished range to a temp file.
func (b *bfChecker) countOnDisk(src trace.Source, opts Options) (useCounts, error) {
	rng := opts.CountRange
	if rng <= 0 {
		rng = 1 << 20
	}

	// Structural pre-pass: establish the learned-clause count and validate
	// record ordering once.
	numLearned := 0
	sawConflict := false
	err := b.scan(src, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindLearned:
			if ev.ID != b.nOrig+numLearned {
				return failf(FailTrace, ev.ID, -1, "expected learned clause ID %d", b.nOrig+numLearned)
			}
			if len(ev.Sources) == 0 {
				return failf(FailTrace, ev.ID, -1, "learned clause has no resolve sources")
			}
			numLearned++
		case trace.KindFinalConflict:
			if sawConflict {
				return failf(FailTrace, ev.ID, -1, "multiple final-conflict records")
			}
			sawConflict = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawConflict {
		return nil, failf(FailTrace, trace.NoClause, -1, "no final-conflict record; trace does not claim UNSAT")
	}

	tmp, err := os.CreateTemp(opts.TempDir, "satcheck-bf-counts-*")
	if err != nil {
		return nil, fmt.Errorf("checker: creating counts spill file: %w", err)
	}
	// The file is unlinked on close; keep only the handle.
	os.Remove(tmp.Name())

	w := bufio.NewWriterSize(tmp, 1<<16)
	chunk := make([]int32, 0, rng)
	if err := b.mem.add(int64(rng)); err != nil {
		tmp.Close()
		return nil, err
	}
	for lo := 0; lo < numLearned || (lo == 0 && numLearned == 0); lo += rng {
		hi := lo + rng
		chunk = chunk[:0]
		for i := 0; i < rng && lo+i < numLearned; i++ {
			chunk = append(chunk, 0)
		}
		bump := func(id int) {
			i := id - b.nOrig - lo
			if i >= 0 && i < len(chunk) {
				chunk[i]++
			}
		}
		err := b.scan(src, func(ev trace.Event) error {
			switch ev.Kind {
			case trace.KindLearned:
				for _, s := range ev.Sources {
					if s < 0 || s >= ev.ID {
						return failf(FailBadSourceRef, s, -1, "learned clause %d references non-earlier clause", ev.ID)
					}
					bump(s)
				}
			case trace.KindLevelZero:
				if ev.Ante < 0 || ev.Ante >= b.nOrig+numLearned {
					return failf(FailBadSourceRef, ev.Ante, -1, "level-0 antecedent out of range")
				}
				bump(ev.Ante)
			case trace.KindFinalConflict:
				if ev.ID < 0 || ev.ID >= b.nOrig+numLearned {
					return failf(FailBadSourceRef, ev.ID, -1, "final conflicting clause out of range")
				}
				bump(ev.ID)
			}
			return nil
		})
		if err != nil {
			tmp.Close()
			return nil, err
		}
		for _, c := range chunk {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], uint32(c))
			if _, err := w.Write(buf[:]); err != nil {
				tmp.Close()
				return nil, fmt.Errorf("checker: writing counts spill: %w", err)
			}
		}
		if hi >= numLearned {
			break
		}
	}
	b.mem.sub(int64(rng))
	if err := w.Flush(); err != nil {
		tmp.Close()
		return nil, err
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		return nil, err
	}
	return &fileCounts{f: tmp, r: bufio.NewReaderSize(tmp, 1<<16), n: numLearned}, nil
}

type fileCounts struct {
	f *os.File
	r *bufio.Reader
	n int
}

func (fc *fileCounts) next() (int32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(fc.r, buf[:]); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(buf[:])), nil
}
func (fc *fileCounts) total() int { return fc.n }
func (fc *fileCounts) close()     { fc.f.Close() }

// scan runs fn over one full pass of the trace.
func (b *bfChecker) scan(src trace.Source, fn func(trace.Event) error) error {
	return scanTrace(src, &b.intr, fn)
}

// buildPass is the second pass: construct every learned clause in trace
// order, evicting clauses whose uses are exhausted, then run the final
// empty-clause derivation.
func (b *bfChecker) buildPass(src trace.Source, counts useCounts) error {
	b.live = make(map[int]*liveClause)
	b.l0 = newLevel0Table()
	b.res.LearnedTotal = counts.total()
	finalID := trace.NoClause

	err := b.scan(src, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindLearned:
			return b.buildLearned(ev.ID, ev.Sources, counts)
		case trace.KindLevelZero:
			if err := b.l0.add(ev.Var, ev.Value, ev.Ante); err != nil {
				return err
			}
			return b.mem.add(3)
		case trace.KindFinalConflict:
			finalID = ev.ID
		}
		return nil
	})
	if err != nil {
		return err
	}

	final, err := b.getClause(finalID)
	if err != nil {
		return &CheckError{Kind: FailBadSourceRef, ClauseID: finalID, Step: -1,
			Detail: "final conflicting clause", Err: err}
	}
	// No copies: stored clause storage is immutable and survives eviction
	// (consume is memory-model accounting), exactly as in the depth-first
	// checker's final stage.
	b.consume(finalID)
	getAnte := func(id int) (cnf.Clause, error) {
		cl, err := b.getClause(id)
		if err != nil {
			return nil, err
		}
		b.consume(id)
		return cl, nil
	}
	return finalStage(final, finalID, b.l0, getAnte, func() { b.res.ResolutionSteps++ })
}

// buildLearned rebuilds one learned clause by chaining its resolve sources
// and validating every step, then installs it if it will be used later.
func (b *bfChecker) buildLearned(id int, sources []int, counts useCounts) error {
	myCount, err := counts.next()
	if err != nil {
		return &CheckError{Kind: FailTrace, ClauseID: id, Step: -1,
			Detail: "counts stream out of sync", Err: err}
	}
	cur, err := b.getClause(sources[0])
	if err != nil {
		b.releaseSources(sources)
		return &CheckError{Kind: FailBadSourceRef, ClauseID: id, Step: 0, Err: err}
	}
	for i, s := range sources[1:] {
		next, err := b.getClause(s)
		if err != nil {
			b.releaseSources(sources)
			return &CheckError{Kind: FailBadSourceRef, ClauseID: id, Step: i + 1, Err: err}
		}
		resv, _, rerr := resolve.ResolventInto(b.scratch[i%2], cur, next)
		if rerr != nil {
			b.releaseSources(sources)
			return &CheckError{Kind: FailResolution, ClauseID: id, Step: i + 1,
				Detail: fmt.Sprintf("resolving with source %d", s), Err: rerr}
		}
		b.scratch[i%2] = resv
		cur = resv
		b.res.ResolutionSteps++
	}
	// Consume the sources only after the whole chain validated; a chain
	// that failed mid-way released them above so the use counts stay
	// balanced either way.
	for _, s := range sources {
		b.consume(s)
	}
	b.res.ClausesBuilt++
	if myCount > 0 {
		// Copy out of the scratch buffers (or the aliased single source):
		// only clauses with a future use pay for owned storage.
		b.live[id] = &liveClause{lits: cur.Clone(), remaining: myCount}
		return b.mem.add(int64(len(cur)))
	}
	return nil
}

// releaseSources consumes every source of a chain that failed mid-way, so a
// rejected proof cannot leak clauses past the eviction accounting.
func (b *bfChecker) releaseSources(sources []int) {
	for _, s := range sources {
		b.consume(s)
	}
}

// getClause fetches clause id: original clauses from the formula, learned
// clauses from the live set.
func (b *bfChecker) getClause(id int) (cnf.Clause, error) {
	if id < 0 {
		return nil, fmt.Errorf("negative clause ID %d", id)
	}
	if id < b.nOrig {
		return b.originals[id], nil
	}
	lc, ok := b.live[id]
	if !ok {
		return nil, fmt.Errorf("learned clause %d is not live (never built, already consumed, or forward reference)", id)
	}
	return lc.lits, nil
}

// consume registers one use of clause id, evicting it when its counted uses
// are exhausted — the breadth-first memory discipline.
func (b *bfChecker) consume(id int) {
	if id < b.nOrig {
		return
	}
	lc, ok := b.live[id]
	if !ok {
		return
	}
	lc.remaining--
	if lc.remaining <= 0 {
		b.mem.sub(int64(len(lc.lits)))
		delete(b.live, id)
	}
}
