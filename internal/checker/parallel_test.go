package checker

import (
	"errors"
	"testing"

	"satcheck/internal/cnf"
	"satcheck/internal/trace"
)

// failingChainTrace returns a formula and trace crafted so learned clause 5
// fails its resolution chain at step 1 *after* its first source — learned
// clause 4, used nowhere else — has been fetched. It is the minimal
// reproduction of a failed chain holding source use-counts.
func failingChainTrace() (*trace.MemoryTrace, int) {
	mt := &trace.MemoryTrace{Events: []trace.Event{
		{Kind: trace.KindLearned, ID: 4, Sources: []int{0, 1}}, // (1 2)+( -1 2) = (2)
		{Kind: trace.KindLearned, ID: 5, Sources: []int{4, 0}}, // (2) vs (1 2): no clash
		{Kind: trace.KindFinalConflict, ID: 5},
	}}
	return mt, 4
}

func failingChainFormula() *cnf.Formula {
	f := cnf.NewFormula(3)
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	f.AddClause(-2, -3)
	return f
}

// Hooks for the external equivalence tests (parallel_equiv_test.go), which
// live outside the package because importing internal/faults from package
// checker's own tests would form an import cycle through internal/drat.
var (
	FailingChainFormulaForTest = failingChainFormula
	FailingChainTraceForTest   = failingChainTrace
)

// TestFailedChainReleasesSourceUseCounts is the regression test for the
// error-path leak: a chain that fails mid-way must release its claims on the
// source use-counts exactly as a successful chain consumes them. Clause 4 is
// used only by the failing clause 5; before the fix it survived the failure
// with a stale count, leaking its literals past the eviction accounting.
// The test drives the hybrid phases directly so the post-failure state is
// observable.
func TestFailedChainReleasesSourceUseCounts(t *testing.T) {
	f := failingChainFormula()
	mt, leakedID := failingChainTrace()

	h := &hybridChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	if err := h.mem.add(int64(f.NumLiterals())); err != nil {
		t.Fatal(err)
	}
	baseline := h.mem.cur
	spill, err := h.spillSources(mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.close()
	if err := h.markPhase(spill); err != nil {
		t.Fatal(err)
	}
	overhead := h.mem.cur - baseline // bitmap + counters, never freed

	err = h.buildPass(mt)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Kind != FailResolution || ce.ClauseID != 5 || ce.Step != 1 {
		t.Fatalf("buildPass err = %v, want FailResolution at clause 5 step 1", err)
	}
	if lc, ok := h.live[leakedID]; ok {
		t.Errorf("failed chain leaked its source: clause %d still live (remaining=%d)", leakedID, lc.remaining)
	}
	if got := h.mem.cur - baseline; got != overhead {
		t.Errorf("memory model unbalanced after failed chain: %d words above baseline, want %d", got, overhead)
	}
}
