package checker

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"satcheck/internal/cnf"
	"satcheck/internal/faults"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// parallelisms returns the worker counts the equivalence tests sweep: the
// degenerate sequential schedule, the smallest truly concurrent one, and
// whatever the host offers.
func parallelisms() []int {
	ps := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		ps = append(ps, n)
	}
	return ps
}

// checkErrorsEquivalent asserts the parallel checker reproduced the hybrid
// checker's diagnostic byte for byte: same structured kind, clause, step, and
// rendered message. FailMemoryLimit is the documented schedule-dependent
// exception, but these tests run without a memory limit, so it never arises.
func checkErrorsEquivalent(t *testing.T, label string, herr, perr error) {
	t.Helper()
	if (herr == nil) != (perr == nil) {
		t.Errorf("%s: hybrid err = %v, parallel err = %v", label, herr, perr)
		return
	}
	if herr == nil {
		return
	}
	var hce, pce *CheckError
	if !errors.As(herr, &hce) || !errors.As(perr, &pce) {
		t.Errorf("%s: unstructured error: hybrid %v, parallel %v", label, herr, perr)
		return
	}
	if hce.Kind != pce.Kind || hce.ClauseID != pce.ClauseID || hce.Step != pce.Step {
		t.Errorf("%s: diagnostic mismatch: hybrid (%v, clause %d, step %d), parallel (%v, clause %d, step %d)",
			label, hce.Kind, hce.ClauseID, hce.Step, pce.Kind, pce.ClauseID, pce.Step)
	}
	if herr.Error() != perr.Error() {
		t.Errorf("%s: message mismatch:\n  hybrid:   %s\n  parallel: %s", label, herr.Error(), perr.Error())
	}
}

// checkResultsEquivalent asserts every schedule-independent result field
// matches hybrid's. PeakMemWords is intentionally excluded: the two checkers
// account different bookkeeping structures (disk spill vs in-memory index)
// and the parallel peak depends on the schedule; its own contract —
// PeakMemWords <= PeakMemBoundWords — is asserted instead.
func checkResultsEquivalent(t *testing.T, label string, hres, pres *Result) {
	t.Helper()
	if hres.LearnedTotal != pres.LearnedTotal {
		t.Errorf("%s: LearnedTotal %d != %d", label, pres.LearnedTotal, hres.LearnedTotal)
	}
	if hres.ClausesBuilt != pres.ClausesBuilt {
		t.Errorf("%s: ClausesBuilt %d != %d", label, pres.ClausesBuilt, hres.ClausesBuilt)
	}
	if hres.ResolutionSteps != pres.ResolutionSteps {
		t.Errorf("%s: ResolutionSteps %d != %d", label, pres.ResolutionSteps, hres.ResolutionSteps)
	}
	if !reflect.DeepEqual(hres.CoreClauses, pres.CoreClauses) {
		t.Errorf("%s: cores differ: hybrid %d clauses, parallel %d", label, len(hres.CoreClauses), len(pres.CoreClauses))
	}
	if hres.CoreVars != pres.CoreVars {
		t.Errorf("%s: CoreVars %d != %d", label, pres.CoreVars, hres.CoreVars)
	}
	if pres.PeakMemBoundWords <= 0 {
		t.Errorf("%s: PeakMemBoundWords = %d, want positive", label, pres.PeakMemBoundWords)
	}
	if pres.PeakMemWords > pres.PeakMemBoundWords {
		t.Errorf("%s: concurrent peak %d exceeds deterministic bound %d",
			label, pres.PeakMemWords, pres.PeakMemBoundWords)
	}
}

// TestParallelMatchesHybrid is the equivalence property the parallel checker
// promises: over the quick benchmark suite — valid proofs and every
// applicable fault-injected mutant — Parallel returns the same verdict, the
// same core, the same statistics, and byte-identical failure diagnostics as
// the sequential Hybrid at every parallelism. The CI race step runs this
// under -race, which also exercises the scheduler's memory-visibility
// claims.
func TestParallelMatchesHybrid(t *testing.T) {
	for _, ins := range gen.SuiteQuick() {
		mt, _ := solveUnsat(t, ins.F, solver.Options{})

		hres, herr := Hybrid(ins.F, mt, Options{})
		if herr != nil {
			t.Fatalf("%s: hybrid rejected a valid proof: %v", ins.Name, herr)
		}
		for _, j := range parallelisms() {
			label := ins.Name + "/valid"
			pres, perr := Parallel(ins.F, mt, Options{Parallelism: j})
			if perr != nil {
				t.Errorf("%s j=%d: parallel rejected a valid proof: %v", label, j, perr)
				continue
			}
			checkResultsEquivalent(t, label, hres, pres)
		}

		for mi, m := range faults.All() {
			mut, ok := faults.Inject(m, mt, int64(1000+mi))
			if !ok {
				continue
			}
			mres, merr := Hybrid(ins.F, mut, Options{})
			for _, j := range parallelisms() {
				label := ins.Name + "/" + m.Name
				pres, perr := Parallel(ins.F, mut, Options{Parallelism: j})
				checkErrorsEquivalent(t, label, merr, perr)
				if merr == nil && perr == nil {
					// A mutant can happen to leave the proof valid; then the
					// full result contract still holds.
					checkResultsEquivalent(t, label, mres, pres)
				}
			}
		}
	}
}

// failingChainTrace returns a formula and trace crafted so learned clause 5
// fails its resolution chain at step 1 *after* its first source — learned
// clause 4, used nowhere else — has been fetched. It is the minimal
// reproduction of a failed chain holding source use-counts.
func failingChainTrace() (*trace.MemoryTrace, int) {
	mt := &trace.MemoryTrace{Events: []trace.Event{
		{Kind: trace.KindLearned, ID: 4, Sources: []int{0, 1}}, // (1 2)+( -1 2) = (2)
		{Kind: trace.KindLearned, ID: 5, Sources: []int{4, 0}}, // (2) vs (1 2): no clash
		{Kind: trace.KindFinalConflict, ID: 5},
	}}
	return mt, 4
}

func failingChainFormula() *cnf.Formula {
	f := cnf.NewFormula(3)
	f.AddClause(1, 2)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	f.AddClause(-2, -3)
	return f
}

// TestFailedChainReleasesSourceUseCounts is the regression test for the
// error-path leak: a chain that fails mid-way must release its claims on the
// source use-counts exactly as a successful chain consumes them. Clause 4 is
// used only by the failing clause 5; before the fix it survived the failure
// with a stale count, leaking its literals past the eviction accounting.
// The test drives the hybrid phases directly so the post-failure state is
// observable.
func TestFailedChainReleasesSourceUseCounts(t *testing.T) {
	f := failingChainFormula()
	mt, leakedID := failingChainTrace()

	h := &hybridChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	if err := h.mem.add(int64(f.NumLiterals())); err != nil {
		t.Fatal(err)
	}
	baseline := h.mem.cur
	spill, err := h.spillSources(mt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer spill.close()
	if err := h.markPhase(spill); err != nil {
		t.Fatal(err)
	}
	overhead := h.mem.cur - baseline // bitmap + counters, never freed

	err = h.buildPass(mt)
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Kind != FailResolution || ce.ClauseID != 5 || ce.Step != 1 {
		t.Fatalf("buildPass err = %v, want FailResolution at clause 5 step 1", err)
	}
	if lc, ok := h.live[leakedID]; ok {
		t.Errorf("failed chain leaked its source: clause %d still live (remaining=%d)", leakedID, lc.remaining)
	}
	if got := h.mem.cur - baseline; got != overhead {
		t.Errorf("memory model unbalanced after failed chain: %d words above baseline, want %d", got, overhead)
	}
}

// TestParallelFailedChainDiagnostic pins the crafted failing trace's
// diagnostic across Hybrid and Parallel at every parallelism — the
// deterministic single-failure case of the equivalence property.
func TestParallelFailedChainDiagnostic(t *testing.T) {
	f := failingChainFormula()
	mt, _ := failingChainTrace()
	_, herr := Hybrid(f, mt, Options{})
	if herr == nil {
		t.Fatal("hybrid accepted the crafted failing trace")
	}
	for _, j := range parallelisms() {
		_, perr := Parallel(f, mt, Options{Parallelism: j})
		checkErrorsEquivalent(t, "crafted", herr, perr)
	}
}
