package checker

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// TestCheckersConcurrent stresses the concurrency contract documented in the
// package doc: every checker may run concurrently with the others over the
// SAME *cnf.Formula and the SAME trace.Source, with no external locking.
// The formula must never be mutated (normalizeOriginals works on clones) and
// each MemoryTrace.Open must hand back an independent reader. Run under
// -race (the CI and `make race` targets do) this is the proof.
func TestCheckersConcurrent(t *testing.T) {
	type instance struct {
		name string
		f    *cnf.Formula
		mt   *trace.MemoryTrace
	}
	var instances []instance
	for _, holes := range []int{4, 5} {
		f := php(holes)
		mt, _ := solveUnsat(t, f, solver.Options{})
		instances = append(instances, instance{fmt.Sprintf("php-%d", holes), f, mt})
	}

	const rounds = 4
	var wg sync.WaitGroup
	for _, ins := range instances {
		// Snapshot the clause literals so we can prove the shared formula
		// came through every concurrent run unmutated.
		before := dimacsString(t, ins.f)
		for _, m := range methods() {
			for r := 0; r < rounds; r++ {
				wg.Add(1)
				go func(ins instance, m method, r int) {
					defer wg.Done()
					opts := Options{}
					if r%2 == 1 {
						// Odd rounds exercise the interrupt poller too — a
						// never-firing hook must not perturb the result.
						opts.Interrupt = func() error { return nil }
					}
					res, err := m.check(ins.f, ins.mt, opts)
					if err != nil {
						t.Errorf("%s/%s round %d: %v", ins.name, m.name, r, err)
						return
					}
					if res.LearnedTotal <= 0 {
						t.Errorf("%s/%s round %d: empty result", ins.name, m.name, r)
					}
				}(ins, m, r)
			}
		}
		wg.Wait()
		if after := dimacsString(t, ins.f); after != before {
			t.Errorf("%s: shared formula mutated by concurrent checking", ins.name)
		}
	}
}

func dimacsString(t *testing.T, f *cnf.Formula) string {
	t.Helper()
	var buf bytes.Buffer
	if err := cnf.WriteDimacs(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
