// Equivalence tests between the Hybrid and Parallel checkers. They live in an
// external test package because they drive internal/faults, which (via the
// clausal mutation catalogue) imports internal/drat and hence this package —
// an import cycle if these tests stayed inside package checker.
package checker_test

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/faults"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// parallelisms returns the worker counts the equivalence tests sweep: the
// degenerate sequential schedule, the smallest truly concurrent one, and
// whatever the host offers.
func parallelisms() []int {
	ps := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		ps = append(ps, n)
	}
	return ps
}

// solveTraced solves f and returns its trace; it fails the test unless f is
// UNSAT.
func solveTraced(t *testing.T, f *cnf.Formula) *trace.MemoryTrace {
	t.Helper()
	s, err := solver.New(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.StatusUnsat {
		t.Fatalf("expected UNSAT, got %v", st)
	}
	return mt
}

// checkErrorsEquivalent asserts the parallel checker reproduced the hybrid
// checker's diagnostic byte for byte: same structured kind, clause, step, and
// rendered message. FailMemoryLimit is the documented schedule-dependent
// exception, but these tests run without a memory limit, so it never arises.
func checkErrorsEquivalent(t *testing.T, label string, herr, perr error) {
	t.Helper()
	if (herr == nil) != (perr == nil) {
		t.Errorf("%s: hybrid err = %v, parallel err = %v", label, herr, perr)
		return
	}
	if herr == nil {
		return
	}
	var hce, pce *checker.CheckError
	if !errors.As(herr, &hce) || !errors.As(perr, &pce) {
		t.Errorf("%s: unstructured error: hybrid %v, parallel %v", label, herr, perr)
		return
	}
	if hce.Kind != pce.Kind || hce.ClauseID != pce.ClauseID || hce.Step != pce.Step {
		t.Errorf("%s: diagnostic mismatch: hybrid (%v, clause %d, step %d), parallel (%v, clause %d, step %d)",
			label, hce.Kind, hce.ClauseID, hce.Step, pce.Kind, pce.ClauseID, pce.Step)
	}
	if herr.Error() != perr.Error() {
		t.Errorf("%s: message mismatch:\n  hybrid:   %s\n  parallel: %s", label, herr.Error(), perr.Error())
	}
}

// checkResultsEquivalent asserts every schedule-independent result field
// matches hybrid's. PeakMemWords is intentionally excluded: the two checkers
// account different bookkeeping structures (disk spill vs in-memory index)
// and the parallel peak depends on the schedule; its own contract —
// PeakMemWords <= PeakMemBoundWords — is asserted instead.
func checkResultsEquivalent(t *testing.T, label string, hres, pres *checker.Result) {
	t.Helper()
	if hres.LearnedTotal != pres.LearnedTotal {
		t.Errorf("%s: LearnedTotal %d != %d", label, pres.LearnedTotal, hres.LearnedTotal)
	}
	if hres.ClausesBuilt != pres.ClausesBuilt {
		t.Errorf("%s: ClausesBuilt %d != %d", label, pres.ClausesBuilt, hres.ClausesBuilt)
	}
	if hres.ResolutionSteps != pres.ResolutionSteps {
		t.Errorf("%s: ResolutionSteps %d != %d", label, pres.ResolutionSteps, hres.ResolutionSteps)
	}
	if !reflect.DeepEqual(hres.CoreClauses, pres.CoreClauses) {
		t.Errorf("%s: cores differ: hybrid %d clauses, parallel %d", label, len(hres.CoreClauses), len(pres.CoreClauses))
	}
	if hres.CoreVars != pres.CoreVars {
		t.Errorf("%s: CoreVars %d != %d", label, pres.CoreVars, hres.CoreVars)
	}
	if pres.PeakMemBoundWords <= 0 {
		t.Errorf("%s: PeakMemBoundWords = %d, want positive", label, pres.PeakMemBoundWords)
	}
	if pres.PeakMemWords > pres.PeakMemBoundWords {
		t.Errorf("%s: concurrent peak %d exceeds deterministic bound %d",
			label, pres.PeakMemWords, pres.PeakMemBoundWords)
	}
}

// TestParallelMatchesHybrid is the equivalence property the parallel checker
// promises: over the quick benchmark suite — valid proofs and every
// applicable fault-injected mutant — Parallel returns the same verdict, the
// same core, the same statistics, and byte-identical failure diagnostics as
// the sequential Hybrid at every parallelism. The CI race step runs this
// under -race, which also exercises the scheduler's memory-visibility
// claims.
func TestParallelMatchesHybrid(t *testing.T) {
	for _, ins := range gen.SuiteQuick() {
		mt := solveTraced(t, ins.F)

		hres, herr := checker.Hybrid(ins.F, mt, checker.Options{})
		if herr != nil {
			t.Fatalf("%s: hybrid rejected a valid proof: %v", ins.Name, herr)
		}
		for _, j := range parallelisms() {
			label := ins.Name + "/valid"
			pres, perr := checker.Parallel(ins.F, mt, checker.Options{Parallelism: j})
			if perr != nil {
				t.Errorf("%s j=%d: parallel rejected a valid proof: %v", label, j, perr)
				continue
			}
			checkResultsEquivalent(t, label, hres, pres)
		}

		for mi, m := range faults.All() {
			mut, ok := faults.Inject(m, mt, int64(1000+mi))
			if !ok {
				// Not applicable to this trace (e.g. no clause has enough
				// sources). Log it so the equivalence claim is not silently
				// narrower than the catalogue.
				t.Logf("%s: mutation %s not applicable, skipped", ins.Name, m.Name)
				continue
			}
			mres, merr := checker.Hybrid(ins.F, mut, checker.Options{})
			for _, j := range parallelisms() {
				label := ins.Name + "/" + m.Name
				pres, perr := checker.Parallel(ins.F, mut, checker.Options{Parallelism: j})
				checkErrorsEquivalent(t, label, merr, perr)
				if merr == nil && perr == nil {
					// A mutant can happen to leave the proof valid; then the
					// full result contract still holds.
					checkResultsEquivalent(t, label, mres, pres)
				}
			}
		}
	}
}

// TestParallelFailedChainDiagnostic pins the crafted failing trace's
// diagnostic across Hybrid and Parallel at every parallelism — the
// deterministic single-failure case of the equivalence property.
func TestParallelFailedChainDiagnostic(t *testing.T) {
	f := checker.FailingChainFormulaForTest()
	mt, _ := checker.FailingChainTraceForTest()
	_, herr := checker.Hybrid(f, mt, checker.Options{})
	if herr == nil {
		t.Fatal("hybrid accepted the crafted failing trace")
	}
	for _, j := range parallelisms() {
		_, perr := checker.Parallel(f, mt, checker.Options{Parallelism: j})
		checkErrorsEquivalent(t, "crafted", herr, perr)
	}
}
