package checker

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// Hybrid validates an UNSAT trace with the strategy the paper's conclusion
// asks for: "a checker that has the advantage of both the depth-first and
// breadth-first approaches without suffering from their respective
// shortcomings ... a depth-first algorithm for the graph on disk".
//
// Phase 1 streams the trace once, spilling each learned clause's resolve
// sources to a temporary file with a fixed-width offset index. Phase 2 walks
// learned-clause IDs backward (sources always precede the clauses they
// derive) marking exactly the clauses reachable from the empty-clause
// derivation roots — the final conflicting clause and the level-0
// antecedents — and counting uses among marked clauses. Phase 3 is a
// breadth-first build pass restricted to marked clauses with use-count
// eviction.
//
// In memory it keeps one *bit* per learned clause plus counters for the
// marked subset only, and it materializes literals only for marked clauses:
// depth-first's "build only what the proof needs" at breadth-first's bounded
// memory.
//
// Result.CoreClauses is a valid unsatisfiable core but can be a superset of
// the depth-first core: the mark phase must conservatively include every
// level-0 antecedent, while depth-first discovers which of them the final
// derivation actually touches.
func Hybrid(f *cnf.Formula, src trace.Source, opts Options) (*Result, error) {
	h := &hybridChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	h.mem.limit = opts.MemLimitWords
	h.intr.fn = opts.Interrupt
	if err := h.mem.add(int64(f.NumLiterals())); err != nil {
		return nil, err
	}

	spill, err := h.spillSources(src, opts)
	if err != nil {
		return nil, err
	}
	defer spill.close()

	if err := h.markPhase(spill); err != nil {
		return nil, err
	}
	if err := h.buildPass(src); err != nil {
		return nil, err
	}
	h.res.PeakMemWords = h.mem.peak
	h.res.CoreClauses, h.res.CoreVars = h.core(f)
	return h.res, nil
}

type hybridChecker struct {
	originals []cnf.Clause
	nOrig     int
	numL      int
	finalID   int
	level0    []trace.Level0Record

	marked   []uint64      // bitmap over learned clauses
	counts   map[int]int32 // uses of each *marked* learned clause
	live     map[int]*liveClause
	usedOrig map[int]struct{}

	mem  memModel
	intr poller
	res  *Result
}

func (h *hybridChecker) mark(id int) bool {
	i := id - h.nOrig
	w, b := i/64, uint(i%64)
	old := h.marked[w]&(1<<b) != 0
	h.marked[w] |= 1 << b
	return old
}

func (h *hybridChecker) isMarked(id int) bool {
	i := id - h.nOrig
	return h.marked[i/64]&(1<<uint(i%64)) != 0
}

// sourcesSpill is the on-disk representation of the learned-clause source
// lists: a data file of varint-encoded records and a fixed 8-byte-per-clause
// offset index, both unlinked on creation.
type sourcesSpill struct {
	data  *os.File
	index *os.File
}

func (s *sourcesSpill) close() {
	if s == nil {
		return
	}
	s.data.Close()
	s.index.Close()
}

// read returns the resolve sources of learned clause number i (0-based).
func (s *sourcesSpill) read(i int) ([]int, error) {
	var off [8]byte
	if _, err := s.index.ReadAt(off[:], int64(i)*8); err != nil {
		return nil, fmt.Errorf("checker: hybrid index read: %w", err)
	}
	sec := io.NewSectionReader(s.data, int64(binary.LittleEndian.Uint64(off[:])), 1<<62)
	br := bufio.NewReaderSize(sec, 512)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checker: hybrid spill read: %w", err)
	}
	srcs := make([]int, n)
	for j := range srcs {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("checker: hybrid spill read: %w", err)
		}
		srcs[j] = int(v)
	}
	return srcs, nil
}

// spillSources is phase 1: one forward pass that validates trace structure,
// records the level-0 assignments and final conflict, and spills source
// lists to disk.
func (h *hybridChecker) spillSources(src trace.Source, opts Options) (*sourcesSpill, error) {
	data, err := os.CreateTemp(opts.TempDir, "satcheck-hybrid-data-*")
	if err != nil {
		return nil, fmt.Errorf("checker: creating spill file: %w", err)
	}
	os.Remove(data.Name())
	index, err := os.CreateTemp(opts.TempDir, "satcheck-hybrid-index-*")
	if err != nil {
		data.Close()
		return nil, fmt.Errorf("checker: creating spill index: %w", err)
	}
	os.Remove(index.Name())
	spill := &sourcesSpill{data: data, index: index}

	dw := bufio.NewWriterSize(data, 1<<16)
	iw := bufio.NewWriterSize(index, 1<<16)
	offset := int64(0)
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(w *bufio.Writer, v uint64) error {
		k := binary.PutUvarint(vbuf[:], v)
		n, err := w.Write(vbuf[:k])
		offset += int64(n)
		return err
	}

	h.finalID = trace.NoClause
	sawConflict := false
	err = h.scan(src, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindLearned:
			if ev.ID != h.nOrig+h.numL {
				return failf(FailTrace, ev.ID, -1, "expected learned clause ID %d", h.nOrig+h.numL)
			}
			if len(ev.Sources) == 0 {
				return failf(FailTrace, ev.ID, -1, "learned clause has no resolve sources")
			}
			h.numL++
			var off [8]byte
			binary.LittleEndian.PutUint64(off[:], uint64(offset))
			if _, err := iw.Write(off[:]); err != nil {
				return err
			}
			if err := writeUvarint(dw, uint64(len(ev.Sources))); err != nil {
				return err
			}
			for _, s := range ev.Sources {
				if s < 0 || s >= ev.ID {
					return failf(FailBadSourceRef, s, -1, "learned clause %d references non-earlier clause", ev.ID)
				}
				if err := writeUvarint(dw, uint64(s)); err != nil {
					return err
				}
			}
		case trace.KindLevelZero:
			h.level0 = append(h.level0, trace.Level0Record{Var: ev.Var, Value: ev.Value, Ante: ev.Ante})
			return h.mem.add(3)
		case trace.KindFinalConflict:
			if sawConflict {
				return failf(FailTrace, ev.ID, -1, "multiple final-conflict records")
			}
			sawConflict = true
			h.finalID = ev.ID
		}
		return nil
	})
	if err != nil {
		spill.close()
		return nil, err
	}
	if !sawConflict {
		spill.close()
		return nil, failf(FailTrace, trace.NoClause, -1, "no final-conflict record; trace does not claim UNSAT")
	}
	if h.finalID < 0 || h.finalID >= h.nOrig+h.numL {
		spill.close()
		return nil, failf(FailBadSourceRef, h.finalID, -1, "final conflicting clause out of range")
	}
	if err := dw.Flush(); err != nil {
		spill.close()
		return nil, err
	}
	if err := iw.Flush(); err != nil {
		spill.close()
		return nil, err
	}
	return spill, nil
}

// markPhase is phase 2: the backward sweep. Roots are the final conflicting
// clause and every level-0 antecedent; each marked clause's sources are read
// from the spill and marked in turn. Because sources strictly precede their
// clause, a single descending-ID sweep reaches the full closure.
func (h *hybridChecker) markPhase(spill *sourcesSpill) error {
	h.marked = make([]uint64, (h.numL+63)/64)
	h.counts = make(map[int]int32)
	h.usedOrig = make(map[int]struct{})
	if err := h.mem.add(int64(len(h.marked)) * 2); err != nil { // 64-bit words = 2 model words
		return err
	}

	root := func(id int) error {
		if id < 0 || id >= h.nOrig+h.numL {
			return failf(FailBadSourceRef, id, -1, "root clause out of range")
		}
		if id < h.nOrig {
			h.usedOrig[id] = struct{}{}
			return nil
		}
		if !h.mark(id) {
			if err := h.mem.add(2); err != nil { // new counter map entry
				return err
			}
		}
		h.counts[id]++
		return nil
	}
	if err := root(h.finalID); err != nil {
		return err
	}
	for _, rec := range h.level0 {
		if err := root(rec.Ante); err != nil {
			return err
		}
	}

	for i := h.numL - 1; i >= 0; i-- {
		if err := h.intr.poll(); err != nil {
			return err
		}
		if !h.isMarked(h.nOrig + i) {
			continue
		}
		srcs, err := spill.read(i)
		if err != nil {
			return &CheckError{Kind: FailTrace, ClauseID: h.nOrig + i, Step: -1, Err: err}
		}
		for _, s := range srcs {
			if err := root(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildPass is phase 3: breadth-first construction restricted to marked
// clauses, followed by the final empty-clause derivation.
func (h *hybridChecker) buildPass(src trace.Source) error {
	h.live = make(map[int]*liveClause)
	l0 := newLevel0Table()
	for _, rec := range h.level0 {
		if err := l0.add(rec.Var, rec.Value, rec.Ante); err != nil {
			return err
		}
	}
	h.res.LearnedTotal = h.numL

	err := h.scan(src, func(ev trace.Event) error {
		if ev.Kind != trace.KindLearned || !h.isMarked(ev.ID) {
			return nil
		}
		cur, err := h.getClause(ev.Sources[0])
		if err != nil {
			return &CheckError{Kind: FailBadSourceRef, ClauseID: ev.ID, Step: 0, Err: err}
		}
		if len(ev.Sources) == 1 {
			cur = cur.Clone()
		}
		for i, s := range ev.Sources[1:] {
			next, err := h.getClause(s)
			if err != nil {
				return &CheckError{Kind: FailBadSourceRef, ClauseID: ev.ID, Step: i + 1, Err: err}
			}
			resv, _, rerr := resolve.Resolvent(cur, next)
			if rerr != nil {
				return &CheckError{Kind: FailResolution, ClauseID: ev.ID, Step: i + 1,
					Detail: fmt.Sprintf("resolving with source %d", s), Err: rerr}
			}
			cur = resv
			h.res.ResolutionSteps++
		}
		for _, s := range ev.Sources {
			h.consume(s)
		}
		h.res.ClausesBuilt++
		h.live[ev.ID] = &liveClause{lits: cur, remaining: h.counts[ev.ID]}
		return h.mem.add(int64(len(cur)))
	})
	if err != nil {
		return err
	}

	final, err := h.getClause(h.finalID)
	if err != nil {
		return &CheckError{Kind: FailBadSourceRef, ClauseID: h.finalID, Step: -1,
			Detail: "final conflicting clause", Err: err}
	}
	final = final.Clone()
	h.consume(h.finalID)
	getAnte := func(id int) (cnf.Clause, error) {
		cl, err := h.getClause(id)
		if err != nil {
			return nil, err
		}
		cl = cl.Clone()
		h.consume(id)
		return cl, nil
	}
	return finalStage(final, h.finalID, l0, getAnte, func() { h.res.ResolutionSteps++ })
}

func (h *hybridChecker) getClause(id int) (cnf.Clause, error) {
	if id < 0 {
		return nil, fmt.Errorf("negative clause ID %d", id)
	}
	if id < h.nOrig {
		h.usedOrig[id] = struct{}{}
		return h.originals[id], nil
	}
	lc, ok := h.live[id]
	if !ok {
		return nil, fmt.Errorf("learned clause %d is not live (unmarked, consumed, or forward reference)", id)
	}
	return lc.lits, nil
}

func (h *hybridChecker) consume(id int) {
	if id < h.nOrig {
		return
	}
	lc, ok := h.live[id]
	if !ok {
		return
	}
	lc.remaining--
	if lc.remaining <= 0 {
		h.mem.sub(int64(len(lc.lits)))
		delete(h.live, id)
	}
}

func (h *hybridChecker) core(f *cnf.Formula) ([]int, int) {
	ids := make([]int, 0, len(h.usedOrig))
	for id := range h.usedOrig {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	seenVar := make(map[cnf.Var]struct{})
	for _, id := range ids {
		for _, l := range f.Clauses[id] {
			seenVar[l.Var()] = struct{}{}
		}
	}
	return ids, len(seenVar)
}

func (h *hybridChecker) scan(src trace.Source, fn func(trace.Event) error) error {
	r, err := src.Open()
	if err != nil {
		return fmt.Errorf("checker: opening trace: %w", err)
	}
	for {
		if err := h.intr.poll(); err != nil {
			return err
		}
		ev, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &CheckError{Kind: FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
