package checker

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"

	"satcheck/internal/cnf"
	"satcheck/internal/resolve"
	"satcheck/internal/trace"
)

// Hybrid validates an UNSAT trace with the strategy the paper's conclusion
// asks for: "a checker that has the advantage of both the depth-first and
// breadth-first approaches without suffering from their respective
// shortcomings ... a depth-first algorithm for the graph on disk".
//
// Phase 1 streams the trace once, spilling each learned clause's resolve
// sources to a temporary file with a fixed-width offset index. Phase 2 walks
// learned-clause IDs backward (sources always precede the clauses they
// derive) marking exactly the clauses reachable from the empty-clause
// derivation roots — the final conflicting clause and the level-0
// antecedents — and counting uses among marked clauses. Phase 3 is a
// breadth-first build pass restricted to marked clauses with use-count
// eviction.
//
// In memory it keeps one *bit* per learned clause plus counters for the
// marked subset only, and it materializes literals only for marked clauses:
// depth-first's "build only what the proof needs" at breadth-first's bounded
// memory.
//
// Result.CoreClauses is a valid unsatisfiable core but can be a superset of
// the depth-first core: the mark phase must conservatively include every
// level-0 antecedent, while depth-first discovers which of them the final
// derivation actually touches.
func Hybrid(f *cnf.Formula, src trace.Source, opts Options) (*Result, error) {
	h := &hybridChecker{
		originals: normalizeOriginals(f),
		nOrig:     len(f.Clauses),
		res:       &Result{},
	}
	h.mem.limit = opts.MemLimitWords
	h.intr.fn = opts.Interrupt
	if err := h.mem.add(int64(f.NumLiterals())); err != nil {
		return nil, err
	}

	spill, err := h.spillSources(src, opts)
	if err != nil {
		return nil, err
	}
	defer spill.close()

	if err := h.markPhase(spill); err != nil {
		return nil, err
	}
	if err := h.buildPass(src); err != nil {
		return nil, err
	}
	h.res.PeakMemWords = h.mem.peak
	h.res.CoreClauses, h.res.CoreVars = h.core(f)
	return h.res, nil
}

type hybridChecker struct {
	originals []cnf.Clause
	nOrig     int
	numL      int
	finalID   int
	level0    []trace.Level0Record

	marked   []uint64 // bitmap over learned clauses
	counts   []int32  // uses of each *marked* learned clause, by learned index
	live     map[int]*liveClause
	usedOrig []uint64 // bitmap over original clauses touched by the proof

	mem     memModel
	intr    poller
	scratch [2]cnf.Clause // ping-pong resolution buffers (resolve.ResolventInto)
	res     *Result
}

func (h *hybridChecker) isMarked(id int) bool {
	i := id - h.nOrig
	return h.marked[i/64]&(1<<uint(i%64)) != 0
}

// sourcesSpill is the on-disk representation of the learned-clause source
// lists: a data file of varint-encoded records and a fixed 8-byte-per-clause
// offset index, both unlinked on creation.
type sourcesSpill struct {
	data  *os.File
	index *os.File
}

func (s *sourcesSpill) close() {
	if s == nil {
		return
	}
	s.data.Close()
	s.index.Close()
}

// read returns the resolve sources of learned clause number i (0-based).
func (s *sourcesSpill) read(i int) ([]int, error) {
	var off [8]byte
	if _, err := s.index.ReadAt(off[:], int64(i)*8); err != nil {
		return nil, fmt.Errorf("checker: hybrid index read: %w", err)
	}
	sec := io.NewSectionReader(s.data, int64(binary.LittleEndian.Uint64(off[:])), 1<<62)
	br := bufio.NewReaderSize(sec, 512)
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("checker: hybrid spill read: %w", err)
	}
	srcs := make([]int, n)
	for j := range srcs {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("checker: hybrid spill read: %w", err)
		}
		srcs[j] = int(v)
	}
	return srcs, nil
}

// structuralScan is the checkers' shared phase-1 trace walk: one forward
// pass that validates trace structure (consecutive learned IDs, non-empty
// and strictly earlier sources, a single in-range final conflict), records
// the level-0 assignments, and hands every validated learned-clause record
// to sink — the hybrid checker's sink spills the source lists to disk, the
// parallel checker's appends them to an in-memory index.
func structuralScan(src trace.Source, nOrig int, intr *poller, mem *memModel,
	sink func(ev trace.Event) error,
) (numL, finalID int, level0 []trace.Level0Record, err error) {
	finalID = trace.NoClause
	sawConflict := false
	err = scanTrace(src, intr, func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindLearned:
			if ev.ID != nOrig+numL {
				return failf(FailTrace, ev.ID, -1, "expected learned clause ID %d", nOrig+numL)
			}
			if len(ev.Sources) == 0 {
				return failf(FailTrace, ev.ID, -1, "learned clause has no resolve sources")
			}
			for _, s := range ev.Sources {
				if s < 0 || s >= ev.ID {
					return failf(FailBadSourceRef, s, -1, "learned clause %d references non-earlier clause", ev.ID)
				}
			}
			numL++
			return sink(ev)
		case trace.KindLevelZero:
			level0 = append(level0, trace.Level0Record{Var: ev.Var, Value: ev.Value, Ante: ev.Ante})
			return mem.add(3)
		case trace.KindFinalConflict:
			if sawConflict {
				return failf(FailTrace, ev.ID, -1, "multiple final-conflict records")
			}
			sawConflict = true
			finalID = ev.ID
		}
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	if !sawConflict {
		return 0, 0, nil, failf(FailTrace, trace.NoClause, -1, "no final-conflict record; trace does not claim UNSAT")
	}
	if finalID < 0 || finalID >= nOrig+numL {
		return 0, 0, nil, failf(FailBadSourceRef, finalID, -1, "final conflicting clause out of range")
	}
	return numL, finalID, level0, nil
}

// spillSources is phase 1: one forward pass that validates trace structure,
// records the level-0 assignments and final conflict, and spills source
// lists to disk.
func (h *hybridChecker) spillSources(src trace.Source, opts Options) (*sourcesSpill, error) {
	data, err := os.CreateTemp(opts.TempDir, "satcheck-hybrid-data-*")
	if err != nil {
		return nil, fmt.Errorf("checker: creating spill file: %w", err)
	}
	os.Remove(data.Name())
	index, err := os.CreateTemp(opts.TempDir, "satcheck-hybrid-index-*")
	if err != nil {
		data.Close()
		return nil, fmt.Errorf("checker: creating spill index: %w", err)
	}
	os.Remove(index.Name())
	spill := &sourcesSpill{data: data, index: index}

	dw := bufio.NewWriterSize(data, 1<<16)
	iw := bufio.NewWriterSize(index, 1<<16)
	offset := int64(0)
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(w *bufio.Writer, v uint64) error {
		k := binary.PutUvarint(vbuf[:], v)
		n, err := w.Write(vbuf[:k])
		offset += int64(n)
		return err
	}

	h.numL, h.finalID, h.level0, err = structuralScan(src, h.nOrig, &h.intr, &h.mem,
		func(ev trace.Event) error {
			var off [8]byte
			binary.LittleEndian.PutUint64(off[:], uint64(offset))
			if _, err := iw.Write(off[:]); err != nil {
				return err
			}
			if err := writeUvarint(dw, uint64(len(ev.Sources))); err != nil {
				return err
			}
			for _, s := range ev.Sources {
				if err := writeUvarint(dw, uint64(s)); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		spill.close()
		return nil, err
	}
	if err := dw.Flush(); err != nil {
		spill.close()
		return nil, err
	}
	if err := iw.Flush(); err != nil {
		spill.close()
		return nil, err
	}
	return spill, nil
}

// markReachable is the hybrid checker's phase-2 backward sweep, shared with
// the parallel checker. Roots are the final conflicting clause and every
// level-0 antecedent; each marked clause's sources (fetched via readSources,
// 0-based learned index) are marked in turn. Because sources strictly
// precede their clause, a single descending-ID sweep reaches the full
// closure. It returns the bitmap over learned clauses, the use count of each
// marked clause (indexed by learned index, 0 for unmarked), the number of
// marked clauses, and the bitmap of original clauses reachable from the
// roots — the unsatisfiable core the build pass can only re-touch, never
// extend. Counts and the core live in flat arrays sized by the known clause
// ranges, not maps: the sweep is allocation-free after setup, which matters
// because this pass runs on every check regardless of strategy.
func markReachable(nOrig, numL, finalID int, level0 []trace.Level0Record,
	readSources func(i int) ([]int, error), mem *memModel, intr *poller,
) (marked []uint64, counts []int32, numMarked int, usedOrig []uint64, err error) {
	marked = make([]uint64, (numL+63)/64)
	counts = make([]int32, numL)
	usedOrig = make([]uint64, (nOrig+63)/64)
	if err := mem.add(int64(len(marked)) * 2); err != nil { // 64-bit words = 2 model words
		return nil, nil, 0, nil, err
	}

	root := func(id int) error {
		if id < 0 || id >= nOrig+numL {
			return failf(FailBadSourceRef, id, -1, "root clause out of range")
		}
		if id < nOrig {
			usedOrig[id/64] |= 1 << uint(id%64)
			return nil
		}
		i := id - nOrig
		w, b := i/64, uint(i%64)
		if marked[w]&(1<<b) == 0 {
			marked[w] |= 1 << b
			numMarked++
			if err := mem.add(2); err != nil { // new use-count entry
				return err
			}
		}
		counts[i]++
		return nil
	}
	if err := root(finalID); err != nil {
		return nil, nil, 0, nil, err
	}
	for _, rec := range level0 {
		if err := root(rec.Ante); err != nil {
			return nil, nil, 0, nil, err
		}
	}

	for i := numL - 1; i >= 0; i-- {
		if err := intr.poll(); err != nil {
			return nil, nil, 0, nil, err
		}
		if marked[i/64]&(1<<uint(i%64)) == 0 {
			continue
		}
		srcs, err := readSources(i)
		if err != nil {
			return nil, nil, 0, nil, &CheckError{Kind: FailTrace, ClauseID: nOrig + i, Step: -1, Err: err}
		}
		for _, s := range srcs {
			if err := root(s); err != nil {
				return nil, nil, 0, nil, err
			}
		}
	}
	return marked, counts, numMarked, usedOrig, nil
}

// markPhase is phase 2: the shared backward sweep over the on-disk spill.
func (h *hybridChecker) markPhase(spill *sourcesSpill) error {
	var err error
	h.marked, h.counts, _, h.usedOrig, err = markReachable(
		h.nOrig, h.numL, h.finalID, h.level0, spill.read, &h.mem, &h.intr)
	return err
}

// buildPass is phase 3: breadth-first construction restricted to marked
// clauses, followed by the final empty-clause derivation.
func (h *hybridChecker) buildPass(src trace.Source) error {
	h.live = make(map[int]*liveClause)
	l0 := newLevel0Table()
	for _, rec := range h.level0 {
		if err := l0.add(rec.Var, rec.Value, rec.Ante); err != nil {
			return err
		}
	}
	h.res.LearnedTotal = h.numL

	err := h.scan(src, func(ev trace.Event) error {
		if ev.Kind != trace.KindLearned || !h.isMarked(ev.ID) {
			return nil
		}
		// A failed chain must still release its claim on the source
		// use-counts: the counting pass assumed this clause would consume
		// them, and leaving them live would leak clauses past the eviction
		// accounting (and, in the parallel checker built on the same
		// discipline, keep real memory alive for the rest of the run).
		cur, err := h.getClause(ev.Sources[0])
		if err != nil {
			h.releaseSources(ev.Sources)
			return &CheckError{Kind: FailBadSourceRef, ClauseID: ev.ID, Step: 0, Err: err}
		}
		for i, s := range ev.Sources[1:] {
			next, err := h.getClause(s)
			if err != nil {
				h.releaseSources(ev.Sources)
				return &CheckError{Kind: FailBadSourceRef, ClauseID: ev.ID, Step: i + 1, Err: err}
			}
			resv, _, rerr := resolve.ResolventInto(h.scratch[i%2], cur, next)
			if rerr != nil {
				h.releaseSources(ev.Sources)
				return &CheckError{Kind: FailResolution, ClauseID: ev.ID, Step: i + 1,
					Detail: fmt.Sprintf("resolving with source %d", s), Err: rerr}
			}
			h.scratch[i%2] = resv
			cur = resv
			h.res.ResolutionSteps++
		}
		for _, s := range ev.Sources {
			h.consume(s)
		}
		h.res.ClausesBuilt++
		// Copy out of the scratch buffers (or the aliased single source):
		// the stored clause must own its storage.
		h.live[ev.ID] = &liveClause{lits: cur.Clone(), remaining: h.counts[ev.ID-h.nOrig]}
		return h.mem.add(int64(len(cur)))
	})
	if err != nil {
		return err
	}

	final, err := h.getClause(h.finalID)
	if err != nil {
		return &CheckError{Kind: FailBadSourceRef, ClauseID: h.finalID, Step: -1,
			Detail: "final conflicting clause", Err: err}
	}
	// No copies: stored clause storage is immutable and survives eviction
	// (consume is memory-model accounting), exactly as in the depth-first
	// checker's final stage.
	h.consume(h.finalID)
	getAnte := func(id int) (cnf.Clause, error) {
		cl, err := h.getClause(id)
		if err != nil {
			return nil, err
		}
		h.consume(id)
		return cl, nil
	}
	return finalStage(final, h.finalID, l0, getAnte, func() { h.res.ResolutionSteps++ })
}

func (h *hybridChecker) getClause(id int) (cnf.Clause, error) {
	if id < 0 {
		return nil, fmt.Errorf("negative clause ID %d", id)
	}
	if id < h.nOrig {
		h.usedOrig[id/64] |= 1 << uint(id%64)
		return h.originals[id], nil
	}
	lc, ok := h.live[id]
	if !ok {
		return nil, fmt.Errorf("learned clause %d is not live (unmarked, consumed, or forward reference)", id)
	}
	return lc.lits, nil
}

func (h *hybridChecker) consume(id int) {
	if id < h.nOrig {
		return
	}
	lc, ok := h.live[id]
	if !ok {
		return
	}
	lc.remaining--
	if lc.remaining <= 0 {
		h.mem.sub(int64(len(lc.lits)))
		delete(h.live, id)
	}
}

// releaseSources consumes every source of a chain that failed mid-way, so
// the use counts stay balanced and no clause outlives its eviction point on
// an error path.
func (h *hybridChecker) releaseSources(sources []int) {
	for _, s := range sources {
		h.consume(s)
	}
}

func (h *hybridChecker) core(f *cnf.Formula) ([]int, int) {
	return coreFromUsed(f, h.usedOrig)
}

// coreFromUsed turns the bitmap of proof-touched original clause IDs into
// the sorted core list plus its distinct-variable count (Table 3's per-proof
// columns); shared by the hybrid and parallel checkers. Walking the bitmap
// in order yields the IDs already sorted.
func coreFromUsed(f *cnf.Formula, usedOrig []uint64) ([]int, int) {
	n := 0
	for _, w := range usedOrig {
		n += bits.OnesCount64(w)
	}
	ids := make([]int, 0, n)
	seenVar := make([]bool, f.NumVars+1)
	vars := 0
	for w, word := range usedOrig {
		for ; word != 0; word &= word - 1 {
			id := w*64 + bits.TrailingZeros64(word)
			ids = append(ids, id)
			for _, l := range f.Clauses[id] {
				if v := l.Var(); !seenVar[v] {
					seenVar[v] = true
					vars++
				}
			}
		}
	}
	return ids, vars
}

func (h *hybridChecker) scan(src trace.Source, fn func(trace.Event) error) error {
	return scanTrace(src, &h.intr, fn)
}

// scanTrace runs fn over one full pass of the trace, polling the interrupt
// hook between records; shared by all checkers.
func scanTrace(src trace.Source, intr *poller, fn func(trace.Event) error) error {
	r, err := src.Open()
	if err != nil {
		return fmt.Errorf("checker: opening trace: %w", err)
	}
	for {
		if err := intr.poll(); err != nil {
			return err
		}
		ev, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return &CheckError{Kind: FailTrace, ClauseID: trace.NoClause, Step: -1, Err: err}
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
