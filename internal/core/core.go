// Package core implements the "other applications" of the paper's §4:
// extracting an unsatisfiable core of a CNF formula from the depth-first
// checker's by-product (the set of original clauses involved in the
// resolution proof), and shrinking it by iterating solve→check→extract up to
// a bound or a fixed point — the procedure behind the paper's Table 3.
//
// Cores are useful wherever one must explain *why* no solution exists: the
// paper cites debugging Alloy software models, diagnosing un-routable FPGA
// channels, and explaining infeasible AI-planning schedules.
package core

import (
	"errors"
	"fmt"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// ErrSatisfiable is returned when a formula given to the core extractor
// turns out to be satisfiable (a core only exists for unsatisfiable input).
var ErrSatisfiable = errors.New("core: formula is satisfiable; no unsatisfiable core exists")

// ErrBudget is returned when the solver hit its conflict budget before
// deciding the instance.
var ErrBudget = errors.New("core: solver exceeded its conflict budget")

// Extraction is one validated unsatisfiable core.
type Extraction struct {
	// ClauseIDs are the clause indices of the core within the input formula,
	// in increasing order.
	ClauseIDs []int
	// Core is the sub-formula made of exactly those clauses (same variable
	// numbering as the input).
	Core *cnf.Formula
	// NumClauses and NumVars are the paper's Table 3 columns: core size and
	// the number of distinct variables the core mentions.
	NumClauses, NumVars int
	// Check is the depth-first checker result the core came from.
	Check *checker.Result
}

// Extract solves f, validates the UNSAT result with the depth-first checker,
// and returns the set of original clauses involved in the proof.
func Extract(f *cnf.Formula, sopts solver.Options) (*Extraction, error) {
	s, err := solver.New(f, sopts)
	if err != nil {
		return nil, err
	}
	tr := &trace.MemoryTrace{}
	s.SetTrace(tr)
	status, err := s.Solve()
	if err != nil {
		return nil, err
	}
	switch status {
	case solver.StatusSat:
		return nil, ErrSatisfiable
	case solver.StatusUnknown:
		return nil, ErrBudget
	}
	res, err := checker.DepthFirst(f, tr, checker.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: proof validation failed: %w", err)
	}
	return fromResult(f, res)
}

// FromCheck converts an existing depth-first checker result into an
// Extraction without re-solving.
func FromCheck(f *cnf.Formula, res *checker.Result) (*Extraction, error) {
	return fromResult(f, res)
}

func fromResult(f *cnf.Formula, res *checker.Result) (*Extraction, error) {
	if res.CoreClauses == nil {
		return nil, fmt.Errorf("core: checker result carries no core (use the depth-first checker)")
	}
	sub, err := f.SubFormula(res.CoreClauses)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(res.CoreClauses))
	copy(ids, res.CoreClauses)
	return &Extraction{
		ClauseIDs:  ids,
		Core:       sub,
		NumClauses: len(ids),
		NumVars:    res.CoreVars,
		Check:      res,
	}, nil
}

// IterationStat records one round of core iteration.
type IterationStat struct {
	Iteration  int // 1-based
	NumClauses int
	NumVars    int
}

// IterateResult is the outcome of the fixed-point iteration.
type IterateResult struct {
	// Stats holds one entry per iteration performed.
	Stats []IterationStat
	// ClauseIDs are the final core's clause indices in the *original* input
	// formula.
	ClauseIDs []int
	// Core is the final core as a formula.
	Core *cnf.Formula
	// FixedPoint is true when an iteration needed every clause of its input
	// (so further iterations cannot shrink the core).
	FixedPoint bool
	// Iterations is the number of solve→check→extract rounds performed.
	Iterations int
}

// First returns the first-iteration stats (the paper's "First Iteration"
// columns); ok is false if no iterations ran.
func (r *IterateResult) First() (IterationStat, bool) {
	if len(r.Stats) == 0 {
		return IterationStat{}, false
	}
	return r.Stats[0], true
}

// Iterate repeatedly extracts a core and feeds it back to the solver
// ("We can use these involved clauses as a new SAT instance ... and
// iteratively perform the depth-first checking again"), stopping after
// maxIter rounds or at a fixed point. The paper uses maxIter = 30.
func Iterate(f *cnf.Formula, maxIter int, sopts solver.Options) (*IterateResult, error) {
	if maxIter <= 0 {
		maxIter = 30
	}
	cur := f
	// ids[i] = index in the original formula of clause i of cur.
	ids := make([]int, len(f.Clauses))
	for i := range ids {
		ids[i] = i
	}
	out := &IterateResult{}
	for iter := 1; iter <= maxIter; iter++ {
		ext, err := Extract(cur, sopts)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", iter, err)
		}
		mapped := make([]int, len(ext.ClauseIDs))
		for i, id := range ext.ClauseIDs {
			mapped[i] = ids[id]
		}
		out.Iterations = iter
		out.Stats = append(out.Stats, IterationStat{
			Iteration:  iter,
			NumClauses: ext.NumClauses,
			NumVars:    ext.NumVars,
		})
		out.ClauseIDs = mapped
		out.Core = ext.Core
		if ext.NumClauses == len(cur.Clauses) {
			// Every clause of the instance participated in the proof: a
			// fixed point in the paper's sense.
			out.FixedPoint = true
			return out, nil
		}
		cur = ext.Core
		ids = mapped
	}
	return out, nil
}

// MinimalStat records one round of MUS extraction.
type MinimalStat struct {
	Tested  int // candidate clauses tried for removal
	Removed int // clauses removed (instance stayed UNSAT without them)
}

// Minimal shrinks a validated unsatisfiable core to a *minimal* unsatisfiable
// subformula (MUS): removing any single clause of the result makes it
// satisfiable. This is the stronger guarantee behind the paper's citation
// [16] (Bruni & Sassano, "finding small unsatisfiable subformulae"); the
// paper's own fixed-point iteration gives small — but not necessarily
// minimal — cores.
//
// The algorithm is destructive deletion seeded by proof-based extraction:
// start from the depth-first checker's core, then for each clause test
// whether the rest is still unsatisfiable; if so drop it, re-extracting the
// (validated) proof core after each successful deletion to skip whole groups
// of newly irrelevant clauses. Every UNSAT verdict along the way is proof-
// checked; every SAT verdict is model-checked.
func Minimal(f *cnf.Formula, sopts solver.Options) (*Extraction, *MinimalStat, error) {
	ext, err := Extract(f, sopts)
	if err != nil {
		return nil, nil, err
	}
	stat := &MinimalStat{}
	ids := ext.ClauseIDs // indices into f
	for i := 0; i < len(ids); {
		stat.Tested++
		// Candidate set: ids without element i.
		cand := make([]int, 0, len(ids)-1)
		cand = append(cand, ids[:i]...)
		cand = append(cand, ids[i+1:]...)
		sub, err := f.SubFormula(cand)
		if err != nil {
			return nil, nil, err
		}
		s, err := solver.New(sub, sopts)
		if err != nil {
			return nil, nil, err
		}
		tr := &trace.MemoryTrace{}
		s.SetTrace(tr)
		status, err := s.Solve()
		if err != nil {
			return nil, nil, err
		}
		switch status {
		case solver.StatusSat:
			// Clause i is necessary: removing it made the rest satisfiable.
			if bad, ok := cnf.VerifyModel(sub, s.Model()); !ok {
				return nil, nil, fmt.Errorf("core: solver model fails clause %d", bad)
			}
			i++
		case solver.StatusUnsat:
			// Clause i is redundant; validate the proof and restrict to the
			// clauses it actually used (mapped back to f's indices).
			res, err := checker.DepthFirst(sub, tr, checker.Options{})
			if err != nil {
				return nil, nil, fmt.Errorf("core: proof validation failed during minimization: %w", err)
			}
			stat.Removed += len(ids) - len(res.CoreClauses)
			mapped := make([]int, len(res.CoreClauses))
			for j, id := range res.CoreClauses {
				mapped[j] = cand[id]
			}
			ids = mapped
			// Resume at the same position: necessity is monotone under
			// subsets (if S\{c} was satisfiable, so is any subset), so the
			// already-confirmed prefix stays confirmed, and because clause
			// indices ascend, every proof core retains it as its first i
			// elements.
		default:
			return nil, nil, ErrBudget
		}
	}
	sub, err := f.SubFormula(ids)
	if err != nil {
		return nil, nil, err
	}
	seenVar := make(map[cnf.Var]struct{})
	for _, id := range ids {
		for _, l := range f.Clauses[id] {
			seenVar[l.Var()] = struct{}{}
		}
	}
	return &Extraction{
		ClauseIDs:  ids,
		Core:       sub,
		NumClauses: len(ids),
		NumVars:    len(seenVar),
	}, stat, nil
}
