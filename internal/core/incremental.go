package core

import (
	"errors"
	"fmt"

	"satcheck/internal/cnf"
	"satcheck/internal/incremental"
	"satcheck/internal/solver"
)

// IterateIncremental is Iterate on a single persistent solver session: the
// input is loaded once behind clause selectors, each round solves under the
// selectors of the current core, and the learned clauses of earlier rounds
// carry over (they are consequences of the guarded base clauses alone, so they
// stay sound for every subset). Each round's UNSAT answer is validated by a
// native checker through the session, and the next core is the intersection of
// the assumption core with the checker's clause core.
//
// Compared to the from-scratch Iterate this skips re-parsing, re-allocating,
// and re-learning on every round — the paper's Table 3 iteration spends most
// of its time re-deriving the same lemmas.
func IterateIncremental(f *cnf.Formula, maxIter int, opts incremental.Options) (*IterateResult, error) {
	if maxIter <= 0 {
		maxIter = 30
	}
	g, err := incremental.NewGuardedSession(f, opts)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(f.Clauses))
	for i := range ids {
		ids[i] = i
	}
	out := &IterateResult{}
	for iter := 1; iter <= maxIter; iter++ {
		st, err := g.SolveSubset(ids)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", iter, err)
		}
		switch st {
		case solver.StatusSat:
			if iter == 1 {
				return nil, ErrSatisfiable
			}
			// Cannot happen: each round solves a checker-validated core of the
			// previous round, which is unsatisfiable by construction.
			return nil, fmt.Errorf("core: iteration %d: validated core became satisfiable", iter)
		case solver.StatusUnknown:
			return nil, fmt.Errorf("core: iteration %d: %w", iter, ErrBudget)
		}
		next := g.CoreIDs()
		if cc := g.CheckerCoreIDs(); cc != nil {
			next = intersectAscending(next, cc)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("core: iteration %d: empty core for a guarded instance", iter)
		}
		out.Iterations = iter
		out.Stats = append(out.Stats, IterationStat{
			Iteration:  iter,
			NumClauses: len(next),
			NumVars:    countVars(f, next),
		})
		out.ClauseIDs = next
		if len(next) == len(ids) {
			out.FixedPoint = true
			break
		}
		ids = next
	}
	sub, err := f.SubFormula(out.ClauseIDs)
	if err != nil {
		return nil, err
	}
	out.Core = sub
	return out, nil
}

// MinimalIncremental shrinks f to a MUS on one persistent session (see
// incremental.ExtractMUS) and reports it in this package's Extraction shape,
// so callers can switch between the from-scratch Minimal and the session-based
// extractor without changing downstream code.
func MinimalIncremental(f *cnf.Formula, opts incremental.Options) (*Extraction, *MinimalStat, error) {
	res, err := incremental.ExtractMUS(f, opts)
	if err != nil {
		if errors.Is(err, incremental.ErrSatisfiable) {
			return nil, nil, ErrSatisfiable
		}
		if errors.Is(err, incremental.ErrBudget) {
			return nil, nil, ErrBudget
		}
		return nil, nil, err
	}
	return &Extraction{
			ClauseIDs:  res.ClauseIDs,
			Core:       res.MUS,
			NumClauses: len(res.ClauseIDs),
			NumVars:    countVars(f, res.ClauseIDs),
		}, &MinimalStat{
			Tested:  res.Stat.Tested,
			Removed: res.Stat.Removed,
		}, nil
}

// countVars counts the distinct variables mentioned by the given clauses of f.
func countVars(f *cnf.Formula, ids []int) int {
	seen := make(map[cnf.Var]struct{})
	for _, id := range ids {
		for _, l := range f.Clauses[id] {
			seen[l.Var()] = struct{}{}
		}
	}
	return len(seen)
}

// intersectAscending intersects two ascending int slices.
func intersectAscending(a, b []int) []int {
	out := make([]int, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
