package core

import (
	"errors"
	"testing"

	"satcheck/internal/cnf"
	"satcheck/internal/gen"
	"satcheck/internal/incremental"
	"satcheck/internal/solver"
	"satcheck/internal/testutil"
)

func TestIterateIncrementalOnSatisfiable(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(1, 2)
	_, err := IterateIncremental(f, 5, incremental.Options{})
	if !errors.Is(err, ErrSatisfiable) {
		t.Errorf("err = %v, want ErrSatisfiable", err)
	}
}

func TestIterateIncrementalOnBudget(t *testing.T) {
	ins := gen.Pigeonhole(6)
	_, err := IterateIncremental(ins.F, 5,
		incremental.Options{Solver: solver.Options{MaxConflicts: 2}})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestIterateIncrementalConverges(t *testing.T) {
	// Same instances as the from-scratch iteration tests: cores must be
	// unsatisfiable, shrink monotonically, and map to original clause IDs.
	instances := []gen.Instance{
		gen.Scheduling(12, 4, 16, 3),
		gen.Pigeonhole(4),
		gen.FPGARouting(8, 3, 6, 5),
	}
	for _, ins := range instances {
		t.Run(ins.Name, func(t *testing.T) {
			res, err := IterateIncremental(ins.F, 30, incremental.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations == 0 || len(res.Stats) != res.Iterations {
				t.Fatalf("stats/iterations mismatch: %d stats, %d iterations",
					len(res.Stats), res.Iterations)
			}
			prev := ins.F.NumClauses() + 1
			for _, st := range res.Stats {
				if st.NumClauses > prev {
					t.Fatalf("core grew at iteration %d: %d > %d",
						st.Iteration, st.NumClauses, prev)
				}
				prev = st.NumClauses
			}
			if len(res.ClauseIDs) != res.Core.NumClauses() {
				t.Fatal("ClauseIDs and Core disagree")
			}
			for i, id := range res.ClauseIDs {
				if id < 0 || id >= ins.F.NumClauses() {
					t.Fatalf("clause ID %d out of range", id)
				}
				if i > 0 && res.ClauseIDs[i-1] >= id {
					t.Fatalf("clause IDs not strictly ascending at %d", i)
				}
				if res.Core.Clauses[i].String() != ins.F.Clauses[id].String() {
					t.Fatalf("core clause %d does not match original clause %d", i, id)
				}
			}
			// The final core must itself be unsatisfiable (independent solve).
			s, err := solver.New(res.Core, solver.Options{})
			if err != nil {
				t.Fatal(err)
			}
			st, err := s.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if st != solver.StatusUnsat {
				t.Fatalf("final core solves %v", st)
			}
		})
	}
}

func TestIterateIncrementalMatchesScratchFixedPoint(t *testing.T) {
	// Incremental and from-scratch iteration may take different paths, but
	// both must land on an unsatisfiable core no larger than the instance,
	// and on PHP (already minimal) both must keep everything.
	ins := gen.Pigeonhole(4)
	scratch, err := Iterate(ins.F, 30, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := IterateIncremental(ins.F, 30, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !scratch.FixedPoint || !inc.FixedPoint {
		t.Fatalf("fixed point: scratch=%v incremental=%v", scratch.FixedPoint, inc.FixedPoint)
	}
	if len(inc.ClauseIDs) != len(scratch.ClauseIDs) {
		t.Fatalf("PHP core sizes differ: scratch %d, incremental %d",
			len(scratch.ClauseIDs), len(inc.ClauseIDs))
	}
}

func TestMinimalIncrementalIsMUS(t *testing.T) {
	// Same shape as TestMinimalIsMUS: PHP(4,3) plus a subsumed clause and
	// satisfiable padding — small enough for the brute-force minimality check.
	ins := gen.Pigeonhole(3)
	f := ins.F
	f.AddClause(1, 2, 3)
	f.AddClause(f.NumVars+1, f.NumVars+2)
	ext, stat, err := MinimalIncremental(f, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stat.Tested == 0 {
		t.Error("no deletion candidates tested")
	}
	if sat, _ := testutil.BruteForceSat(ext.Core); sat {
		t.Fatal("MUS is satisfiable")
	}
	for drop := range ext.ClauseIDs {
		rest := make([]int, 0, len(ext.ClauseIDs)-1)
		rest = append(rest, ext.ClauseIDs[:drop]...)
		rest = append(rest, ext.ClauseIDs[drop+1:]...)
		sub, err := f.SubFormula(rest)
		if err != nil {
			t.Fatal(err)
		}
		if sat, _ := testutil.BruteForceSat(sub); !sat {
			t.Fatalf("not minimal: still UNSAT without clause %d", ext.ClauseIDs[drop])
		}
	}
	if ext.NumClauses != ins.F.NumClauses()-2 {
		t.Errorf("MUS has %d clauses, want the %d PHP clauses", ext.NumClauses, ins.F.NumClauses()-2)
	}
	if _, _, err := MinimalIncremental(cnf.NewFormula(1), incremental.Options{}); err == nil {
		t.Fatal("empty formula accepted")
	}
}
