package core

import (
	"errors"
	"testing"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
	"satcheck/internal/testutil"
)

func TestExtractOnSatisfiable(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(1, 2)
	_, err := Extract(f, solver.Options{})
	if !errors.Is(err, ErrSatisfiable) {
		t.Errorf("err = %v, want ErrSatisfiable", err)
	}
}

func TestExtractOnBudget(t *testing.T) {
	ins := gen.Pigeonhole(6)
	_, err := Extract(ins.F, solver.Options{MaxConflicts: 2})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestExtractCoreIsUnsatAndMinimalShape(t *testing.T) {
	// PHP core plus satisfiable padding: extraction must discard padding.
	ins := gen.Pigeonhole(4)
	f := ins.F
	base := f.NumClauses()
	for i := 1; i <= 8; i += 2 {
		f.AddClause(f.NumVars+i, f.NumVars+i+1)
	}
	ext, err := Extract(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumClauses != len(ext.ClauseIDs) || ext.NumClauses != ext.Core.NumClauses() {
		t.Error("inconsistent clause counts")
	}
	for _, id := range ext.ClauseIDs {
		if id >= base {
			t.Errorf("core contains padding clause %d", id)
		}
	}
	if sat, _ := testutil.BruteForceSat(ext.Core); sat {
		t.Error("core is satisfiable")
	}
	if ext.Check == nil || ext.Check.CoreClauses == nil {
		t.Error("extraction must carry the checker result")
	}
}

func TestIterateConverges(t *testing.T) {
	// Scheduling has a tiny core (the clique); iteration should find it and
	// reach a fixed point quickly.
	ins := gen.Scheduling(12, 3, 8, 5)
	res, err := Iterate(ins.F, 30, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) == 0 {
		t.Fatal("no iterations recorded")
	}
	// Core sizes must be non-increasing.
	for i := 1; i < len(res.Stats); i++ {
		if res.Stats[i].NumClauses > res.Stats[i-1].NumClauses {
			t.Errorf("core grew at iteration %d: %d -> %d",
				i+1, res.Stats[i-1].NumClauses, res.Stats[i].NumClauses)
		}
	}
	first, ok := res.First()
	if !ok || first.Iteration != 1 {
		t.Error("First() broken")
	}
	if first.NumClauses >= ins.F.NumClauses() {
		t.Errorf("first core (%d) not smaller than input (%d)", first.NumClauses, ins.F.NumClauses())
	}
	// Final core references valid original clause IDs and is unsat.
	sub, err := ins.F.SubFormula(res.ClauseIDs)
	if err != nil {
		t.Fatal(err)
	}
	if sat, _ := testutil.BruteForceSat(sub); sat {
		t.Error("final core (mapped to original IDs) is satisfiable")
	}
	if res.Core.NumClauses() != len(res.ClauseIDs) {
		t.Error("Core and ClauseIDs disagree")
	}
}

func TestIterateFixedPointOnPHP(t *testing.T) {
	// PHP needs every clause: fixed point at iteration 1.
	ins := gen.Pigeonhole(4)
	res, err := Iterate(ins.F, 30, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FixedPoint {
		t.Error("PHP should hit a fixed point")
	}
	if res.Iterations != 1 {
		t.Errorf("PHP fixed point at iteration %d, want 1", res.Iterations)
	}
	if len(res.ClauseIDs) != ins.F.NumClauses() {
		t.Errorf("PHP core %d clauses, want all %d", len(res.ClauseIDs), ins.F.NumClauses())
	}
}

func TestIterateRespectsMaxIter(t *testing.T) {
	ins := gen.Scheduling(12, 3, 8, 5)
	res, err := Iterate(ins.F, 1, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 || len(res.Stats) != 1 {
		t.Errorf("iterations = %d, want exactly 1", res.Iterations)
	}
	// maxIter <= 0 defaults to 30 (and converges long before).
	res2, err := Iterate(ins.F, 0, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations < 1 {
		t.Error("default maxIter did not iterate")
	}
}

func TestIterateMapsIDsThroughRounds(t *testing.T) {
	// Put the contradiction at the END of the formula so ID mapping between
	// rounds is exercised (sub-formula IDs differ from original IDs).
	f := cnf.NewFormula(0)
	for i := 1; i <= 10; i += 2 {
		f.AddClause(i, i+1) // padding over vars 1..11
	}
	n := f.NumVars
	f.AddClause(n + 1)
	f.AddClause(-(n + 1), n+2)
	f.AddClause(-(n + 2))
	res, err := Iterate(f, 30, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Padding occupies clause IDs 0..4; the unit-chain contradiction is
	// clauses 5, 6, 7.
	want := map[int]bool{5: true, 6: true, 7: true}
	for _, id := range res.ClauseIDs {
		if !want[id] {
			t.Errorf("final core contains unexpected original clause %d", id)
		}
	}
	sub, err := f.SubFormula(res.ClauseIDs)
	if err != nil {
		t.Fatal(err)
	}
	if sat, _ := testutil.BruteForceSat(sub); sat {
		t.Error("mapped core is satisfiable")
	}
}

func TestFromCheckRequiresCore(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(1)
	f.AddClause(-1)
	// A breadth-first result has no CoreClauses; FromCheck must refuse it.
	if _, err := FromCheck(f, &checker.Result{}); err == nil {
		t.Error("result without a core accepted")
	}
	// A depth-first-style result converts.
	ext, err := FromCheck(f, &checker.Result{CoreClauses: []int{0, 1}, CoreVars: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumClauses != 2 || ext.NumVars != 1 {
		t.Errorf("ext = %+v", ext)
	}
	// Out-of-range IDs propagate as errors.
	if _, err := FromCheck(f, &checker.Result{CoreClauses: []int{9}}); err == nil {
		t.Error("out-of-range core ID accepted")
	}
}

func TestMinimalIsMUS(t *testing.T) {
	// PHP(4,3) plus redundant extra clauses and padding: the MUS must be
	// genuinely minimal — removing any single clause makes it satisfiable.
	ins := gen.Pigeonhole(3)
	f := ins.F
	f.AddClause(1, 2, 3)                  // subsumed by pigeon 0's ALO clause
	f.AddClause(f.NumVars+1, f.NumVars+2) // satisfiable padding
	ext, stat, err := Minimal(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stat.Tested == 0 {
		t.Error("no candidates tested")
	}
	if sat, _ := testutil.BruteForceSat(ext.Core); sat {
		t.Fatal("MUS is satisfiable")
	}
	// Minimality: drop each clause in turn; result must be SAT.
	for i := range ext.ClauseIDs {
		sub := ext.Core.Clone()
		sub.Clauses = append(sub.Clauses[:i:i], sub.Clauses[i+1:]...)
		if sat, _ := testutil.BruteForceSat(sub); !sat {
			t.Errorf("dropping MUS clause %d leaves an unsatisfiable formula — not minimal", i)
		}
	}
	// For PHP every original clause is needed: the MUS is exactly PHP.
	if ext.NumClauses != ins.F.NumClauses()-2 {
		t.Errorf("MUS has %d clauses, want the %d PHP clauses", ext.NumClauses, ins.F.NumClauses()-2)
	}
}

func TestMinimalOnContradictoryChain(t *testing.T) {
	// Padding plus a 3-clause contradiction: the MUS is exactly those 3.
	f := cnf.NewFormula(0)
	for i := 1; i <= 9; i += 2 {
		f.AddClause(i, i+1)
	}
	n := f.NumVars
	f.AddClause(n + 1)
	f.AddClause(-(n + 1), n+2)
	f.AddClause(-(n + 2))
	ext, _, err := Minimal(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumClauses != 3 {
		t.Errorf("MUS has %d clauses, want 3", ext.NumClauses)
	}
}

func TestMinimalOnSatisfiable(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(1)
	if _, _, err := Minimal(f, solver.Options{}); !errors.Is(err, ErrSatisfiable) {
		t.Errorf("err = %v", err)
	}
}

func TestMinimalSmallerThanIterate(t *testing.T) {
	// Scheduling cores stop shrinking at the fixed point; the MUS can be
	// smaller (or at worst equal).
	ins := gen.Scheduling(10, 3, 6, 4)
	it, err := Iterate(ins.F, 30, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mus, _, err := Minimal(ins.F, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := it.Stats[len(it.Stats)-1]
	if mus.NumClauses > last.NumClauses {
		t.Errorf("MUS (%d clauses) larger than fixed-point core (%d)", mus.NumClauses, last.NumClauses)
	}
}
