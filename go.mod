module satcheck

go 1.22
