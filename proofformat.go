package satcheck

import (
	"fmt"
	"io"

	"satcheck/internal/drat"
	"satcheck/internal/kernelcheck"
	"satcheck/internal/ooc"
	"satcheck/internal/solver"
)

// ProofFormat identifies the encoding of a proof handed to RunCheck (and,
// through it, to the zcheckd service and the zverify/zcheck CLIs).
type ProofFormat int

// The supported proof encodings.
const (
	// FormatNative is the solver's resolution trace (antecedent lists per
	// learned clause) — the paper's format, checked by the four resolution
	// checkers.
	FormatNative ProofFormat = iota
	// FormatDRAT is a clausal DRUP/DRAT proof (additions and deletions, no
	// antecedents), ASCII or binary, checked by reverse unit propagation
	// with RAT fallback.
	FormatDRAT
	// FormatLRAT is a clausal proof with propagation hints, checked by a
	// hint-following verifier that performs no search.
	FormatLRAT
	// FormatER is an extended-resolution proof as emitted by the BDD
	// backend (extension-variable definitions plus RUP lemmas with hints),
	// checked by bridging to LRAT and running the hint-following verifier.
	FormatER
)

// String names the format as accepted by ParseProofFormat.
func (pf ProofFormat) String() string {
	switch pf {
	case FormatNative:
		return "native"
	case FormatDRAT:
		return "drat"
	case FormatLRAT:
		return "lrat"
	case FormatER:
		return "er"
	default:
		return fmt.Sprintf("format(%d)", int(pf))
	}
}

// ParseProofFormat parses a format name ("native", "drat", "lrat", "er").
func ParseProofFormat(s string) (ProofFormat, error) {
	switch s {
	case "", "native", "trace":
		return FormatNative, nil
	case "drat", "drup":
		return FormatDRAT, nil
	case "lrat":
		return FormatLRAT, nil
	case "er":
		return FormatER, nil
	default:
		return FormatNative, fmt.Errorf("satcheck: unknown proof format %q (want native, drat, lrat, or er)", s)
	}
}

// ProofSource supplies the bytes of a clausal (DRAT/LRAT) proof. Sources
// must support repeated Open calls; gzip and the DRAT binary encoding are
// auto-detected on read.
type ProofSource = drat.Source

// ProofFileSource reads a clausal proof from a file (".gz" handled
// transparently, by content sniffing rather than extension).
func ProofFileSource(path string) ProofSource { return drat.FileSource(path) }

// ProofBytesSource serves a clausal proof from memory.
func ProofBytesSource(b []byte) ProofSource { return drat.BytesSource(b) }

// DRATWriter streams a DRUP/DRAT proof; it satisfies the solver's ProofSink,
// so `solver.SetProofSink(NewDRATWriter(f))` records a clausal proof during
// the solve (see SolveWithDRUP for the facade-level helper).
type DRATWriter = drat.Writer

// NewDRATWriter returns an ASCII DRUP/DRAT proof writer.
func NewDRATWriter(w io.Writer) *DRATWriter { return drat.NewWriter(w) }

// NewBinaryDRATWriter returns a binary-encoded DRAT proof writer.
func NewBinaryDRATWriter(w io.Writer) *DRATWriter { return drat.NewBinaryWriter(w) }

// dratMode maps a checker Method onto a clausal checking mode. BreadthFirst
// is the streaming, no-core strategy in both worlds, so it selects forward
// checking; the core-producing strategies (DepthFirst, Hybrid, Parallel)
// select backward checking, whose marked originals are an unsatisfiable
// core exactly like the native checkers'.
func dratMode(m Method) (drat.Mode, error) {
	switch m {
	case BreadthFirst:
		return drat.Forward, nil
	case DepthFirst, Hybrid, Parallel:
		return drat.Backward, nil
	default:
		return drat.Forward, fmt.Errorf("satcheck: unknown check method %d", int(m))
	}
}

// CheckDRAT validates a DRUP/DRAT proof that f is unsatisfiable. The method
// selects the checking direction (see dratMode); like Check, a nil error
// proves the claim and a *CheckError describes the first invalid step.
func CheckDRAT(f *Formula, src ProofSource, m Method, opts CheckOptions) (*CheckResult, error) {
	if m == Kernel {
		// Forward-check the clausal proof, record the propagation hints, and
		// verify them in the trusted kernel; the kernel's hint closure is the
		// returned core.
		return kernelcheck.KernelCheckDRAT(f, src, opts)
	}
	if m == OOC {
		return ooc.CheckDRAT(f, src, opts)
	}
	mode, err := dratMode(m)
	if err != nil {
		return nil, err
	}
	return drat.Check(f, src, mode, opts)
}

// CheckLRAT validates an LRAT proof by following its hints — no propagation
// search, making it the cheapest and most independent check in the package.
func CheckLRAT(f *Formula, src ProofSource, opts CheckOptions) (*CheckResult, error) {
	return kernelcheck.CheckLRAT(f, src, opts)
}

// CheckLRATCore is CheckLRAT with the kernel's hint-closure unsat core in
// the result (CheckLRAT reports none, for historical compatibility).
func CheckLRATCore(f *Formula, src ProofSource, opts CheckOptions) (*CheckResult, error) {
	return kernelcheck.CheckLRATCore(f, src, opts)
}

// CheckLRATOOC validates an LRAT proof out of core: the proof is mmap'd
// (or spooled) and checked in windows sized to CheckOptions.MemBudgetBytes
// by the trusted kernel, with boundary-crossing clauses spilled to disk.
// Verdicts and cores match CheckLRATCore on everything it accepts; RAT
// lemmas are rejected fail-closed (the out-of-core checker is RUP-only).
func CheckLRATOOC(f *Formula, src ProofSource, opts CheckOptions) (*CheckResult, error) {
	return ooc.CheckLRAT(f, src, opts)
}

// DRATToLRAT forward-checks a DRAT proof and writes the accepted derivation
// as LRAT with propagation hints; the emitted proof is re-verified by the
// independent LRAT checker before anything is written to w.
func DRATToLRAT(f *Formula, src ProofSource, w io.Writer, opts CheckOptions) (*CheckResult, error) {
	return kernelcheck.DRATToLRAT(f, src, w, opts)
}

// TraceToLRAT converts a native resolution trace to a verified LRAT proof.
func TraceToLRAT(f *Formula, src TraceSource, w io.Writer, opts CheckOptions) (*CheckResult, error) {
	return kernelcheck.TraceToLRAT(f, src, w, opts)
}

// SolveWithDRUP decides f while streaming a DRUP proof of an UNSAT answer
// to sink (in addition to any trace sink configured via SolveToSink — the
// two records are independent). The proof is only meaningful when the
// returned status is StatusUnsat.
func SolveWithDRUP(f *Formula, opts SolverOptions, proof *DRATWriter) (Status, SolverStats, error) {
	s, err := solver.New(f, opts)
	if err != nil {
		return StatusUnknown, SolverStats{}, err
	}
	s.SetProofSink(proof)
	st, err := s.Solve()
	return st, s.Stats(), err
}

// ctxProofSource aborts clausal proof reads once the context is done; the
// byte-level analogue of ctxSource.
type ctxProofSource struct {
	ctx ctxDoner
	src ProofSource
}

// ctxDoner is the subset of context.Context the wrappers need.
type ctxDoner interface{ Err() error }

// ProofPath exposes the underlying file path when the wrapped source is
// file-backed, letting the out-of-core checker mmap it directly (the
// context is still honored: the ooc checker polls Interrupt, which RunCheck
// wires to the same context).
func (c ctxProofSource) ProofPath() string {
	if fs, ok := c.src.(drat.FileSource); ok {
		return string(fs)
	}
	return ""
}

// Open implements ProofSource.
func (c ctxProofSource) Open() (io.ReadCloser, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	rc, err := c.src.Open()
	if err != nil {
		return nil, err
	}
	return &ctxByteReader{ctx: c.ctx, rc: rc}, nil
}

type ctxByteReader struct {
	ctx ctxDoner
	rc  io.ReadCloser
	n   int
}

func (r *ctxByteReader) Read(p []byte) (int, error) {
	// Reads arrive in bufio-sized chunks, so polling every call is cheap.
	if r.n++; r.n%16 == 0 {
		if err := r.ctx.Err(); err != nil {
			return 0, err
		}
	}
	return r.rc.Read(p)
}

func (r *ctxByteReader) Close() error { return r.rc.Close() }
