package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"satcheck/internal/certify"
	"satcheck/internal/cluster"
	"satcheck/internal/server"
	"satcheck/internal/store"
)

// payloadFiles writes tiny stand-in formula/trace files; the fake servers
// below never parse them.
func payloadFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	f := filepath.Join(dir, "f.cnf")
	tr := filepath.Join(dir, "p.trace")
	if err := os.WriteFile(f, []byte("p cnf 1 2\n1 0\n-1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tr, []byte("3 -1 1 0 1 2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f, tr
}

func validCheckJSON(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(&server.CheckResponse{
		Verdict: server.VerdictValid,
		Method:  "df",
		Result:  &server.ResultJSON{LearnedTotal: 3, ClausesBuilt: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRetryAgainstFlakyServer drives run() against a server that answers
// 503 twice before succeeding: with -retries 3 the check must come back
// valid, and the server must have seen exactly three attempts, each with a
// complete multipart body.
func TestRetryAgainstFlakyServer(t *testing.T) {
	f, tr := payloadFiles(t)
	var calls atomic.Int32
	ok := validCheckJSON(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if err := r.ParseMultipartForm(1 << 20); err != nil {
			t.Errorf("attempt %d: bad multipart: %v", n, err)
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "queue full", RetryAfterSec: 0})
			return
		}
		w.Write(ok)
	}))
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-retries", "3", "-retry-base", "5ms", f, tr}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", calls.Load())
	}
	if !strings.Contains(out.String(), "PROOF VALID") {
		t.Fatalf("missing verdict: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "retrying in") {
		t.Fatalf("no retry notice on stderr: %s", errBuf.String())
	}
}

// TestRetriesExhausted keeps the server at 429 and expects exit 3 after
// exactly 1 + retries attempts.
func TestRetriesExhausted(t *testing.T) {
	f, tr := payloadFiles(t)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "tenant quota exceeded"})
	}))
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-retries", "2", "-retry-base", "2ms", f, tr}, &out, &errBuf)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr: %s", code, errBuf.String())
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestNoRetryByDefault pins the backward-compatible default: one attempt.
func TestNoRetryByDefault(t *testing.T) {
	f, tr := payloadFiles(t)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "draining"})
	}))
	defer ts.Close()
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", ts.URL, f, tr}, &out, &errBuf); code != 3 {
		t.Fatalf("exit %d, want 3", code)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d attempts, want 1", calls.Load())
	}
}

// TestAsyncSubmitAndPoll fakes the cluster job API: 202 on submit, one
// "running" poll, then "done" with an embedded check response.
func TestAsyncSubmitAndPoll(t *testing.T) {
	f, tr := payloadFiles(t)
	ok := validCheckJSON(t)
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("class"); got != "interactive" {
			t.Errorf("class=%q, want interactive", got)
		}
		if got := r.Header.Get("X-Tenant"); got != "ci" {
			t.Errorf("X-Tenant=%q, want ci", got)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{
			ID: "abc123", State: store.StateQueued, Class: "interactive",
			StatusURL: "/v1/jobs/abc123",
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "abc123" {
			http.NotFound(w, r)
			return
		}
		js := &cluster.JobStatusResponse{ID: "abc123", State: store.StateRunning}
		if polls.Add(1) >= 2 {
			js.State = store.StateDone
			js.Check = ok
		}
		json.NewEncoder(w).Encode(js)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-async", "-poll", "5ms",
		"-class", "interactive", "-tenant", "ci", f, tr}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "PROOF VALID") {
		t.Fatalf("missing verdict: %s", out.String())
	}
	if polls.Load() < 2 {
		t.Fatalf("only %d polls", polls.Load())
	}
}

// TestAsyncFireAndForget submits with -poll 0 and expects just the job ID.
func TestAsyncFireAndForget(t *testing.T) {
	f, tr := payloadFiles(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{ID: "job42", State: store.StateQueued})
	}))
	defer ts.Close()
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-async", "-poll", "0", f, tr}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "job42") {
		t.Fatalf("job ID not printed: %q", out.String())
	}
}

// TestAsyncFailedJob surfaces a failed job as exit 1 with the error text.
func TestAsyncFailedJob(t *testing.T) {
	f, tr := payloadFiles(t)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{ID: "bad1", State: store.StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(&cluster.JobStatusResponse{
			ID: "bad1", State: store.StateFailed, Error: "dispatch attempts exhausted",
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", ts.URL, "-async", "-poll", "5ms", f, tr}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "dispatch attempts exhausted") {
		t.Fatalf("error not surfaced: %s", errBuf.String())
	}
}

// TestBackoffDelayJitterBounds pins the jitter window: [0.5d, 1.5d), with
// the exponential capped.
func TestBackoffDelayJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		d := base << uint(attempt)
		if d > 10*time.Second {
			d = 10 * time.Second
		}
		for i := 0; i < 50; i++ {
			got := backoffDelay(base, attempt)
			if got < d/2 || got >= d/2+d {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, d/2, d/2+d)
			}
		}
	}
}

// TestAsyncPollRetriesTransient answers the status poll with two 503s (the
// cluster router draining) before the job turns up done: with -retries 2 the
// client must ride out the blip instead of abandoning a job the cluster is
// still running.
func TestAsyncPollRetriesTransient(t *testing.T) {
	f, tr := payloadFiles(t)
	ok := validCheckJSON(t)
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{ID: "flaky1", State: store.StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1)
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "router draining"})
			return
		}
		json.NewEncoder(w).Encode(&cluster.JobStatusResponse{ID: "flaky1", State: store.StateDone, Check: ok})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-async", "-poll", "2ms",
		"-retries", "2", "-retry-base", "2ms", f, tr}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "PROOF VALID") {
		t.Fatalf("missing verdict: %s", out.String())
	}
	if polls.Load() != 3 {
		t.Fatalf("server saw %d polls, want 3", polls.Load())
	}
	if !strings.Contains(errBuf.String(), "poll failed") {
		t.Fatalf("no poll-retry notice on stderr: %s", errBuf.String())
	}
}

// TestAsyncPollRetriesExhausted keeps the poll endpoint at 429 and expects
// the backpressure exit code after 1 + retries poll attempts.
func TestAsyncPollRetriesExhausted(t *testing.T) {
	f, tr := payloadFiles(t)
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{ID: "stuck1", State: store.StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "quota"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-async", "-poll", "2ms",
		"-retries", "2", "-retry-base", "2ms", f, tr}, &out, &errBuf)
	if code != 3 {
		t.Fatalf("exit %d, want 3 (backpressure); stderr: %s", code, errBuf.String())
	}
	if polls.Load() != 3 {
		t.Fatalf("server saw %d polls, want 3 (1 + 2 retries)", polls.Load())
	}
}

// TestAsyncPollNonTransientFailsFast: a 404 on the status poll is not
// retryable — one attempt, exit 1.
func TestAsyncPollNonTransientFailsFast(t *testing.T) {
	f, tr := payloadFiles(t)
	var polls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(&cluster.JobSubmitResponse{ID: "gone1", State: store.StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(&server.ErrorResponse{Error: "unknown job"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out, errBuf bytes.Buffer
	code := run([]string{"-addr", ts.URL, "-async", "-poll", "2ms",
		"-retries", "5", "-retry-base", "2ms", f, tr}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errBuf.String())
	}
	if polls.Load() != 1 {
		t.Fatalf("server saw %d polls, want 1 (no retry on 404)", polls.Load())
	}
}

// certifyFiles adds a DRAT stand-in next to the formula/trace pair.
func certifyFiles(t *testing.T) (string, string, string) {
	t.Helper()
	f, tr := payloadFiles(t)
	dr := filepath.Join(filepath.Dir(f), "p.drat")
	if err := os.WriteFile(dr, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return f, tr, dr
}

// TestCertifyClient drives zcheck -certify against a fake dual-policy
// endpoint: the request must carry policy=dual and all three parts, and the
// exit code must track the bundle's outcome.
func TestCertifyClient(t *testing.T) {
	f, tr, dr := certifyFiles(t)
	signer, err := certify.NewEd25519SignerFromSeed(bytes.Repeat([]byte{9}, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		bundle   *certify.Bundle
		wantExit int
	}{
		{"certified", certify.Assemble(certify.Hashes{Instance: "aa"}, []certify.CheckerVerdict{
			{Pipeline: certify.PipelineKernel, Verdict: certify.VerdictAccept},
			{Pipeline: certify.PipelineRUP, Verdict: certify.VerdictAccept},
		}, signer, time.Unix(1754600000, 0)), 0},
		{"fail-closed", certify.FailBundle(certify.Hashes{Instance: "aa"},
			"pipeline disagreement (fail-closed): kernel accepted but rup rejected: bogus",
			signer, time.Unix(1754600000, 0)), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if got := r.URL.Query().Get("policy"); got != "dual" {
					t.Errorf("policy=%q, want dual", got)
				}
				if err := r.ParseMultipartForm(1 << 20); err != nil {
					t.Errorf("bad multipart: %v", err)
				}
				for _, field := range []string{"formula", "trace", "drat"} {
					if r.MultipartForm == nil || len(r.MultipartForm.File[field]) != 1 {
						t.Errorf("missing part %q", field)
					}
				}
				json.NewEncoder(w).Encode(tc.bundle)
			}))
			defer ts.Close()

			var out, errBuf bytes.Buffer
			code := run([]string{"-addr", ts.URL, "-certify", f, tr, dr}, &out, &errBuf)
			if code != tc.wantExit {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.wantExit, out.String(), errBuf.String())
			}
			if !strings.Contains(out.String(), tc.bundle.Outcome) {
				t.Fatalf("bundle outcome not printed: %s", out.String())
			}
			if tc.wantExit == 2 && !strings.Contains(errBuf.String(), "CERTIFY_FAIL") {
				t.Fatalf("failure reason not surfaced: %s", errBuf.String())
			}
		})
	}
}
