// Command zcheck is the client for the zcheckd proof-checking daemon: it
// uploads a DIMACS formula and a solver trace (any encoding — ASCII,
// binary, either gzipped) and prints the daemon's structured verdict in the
// same shape as the local zverify tool.
//
// Usage:
//
//	zcheck [-addr http://localhost:8347] [-method df|bf|hybrid|parallel|kernel]
//	       [-format native|drat|lrat] [-j N] [-mem-limit-mb N] [-timeout D]
//	       [-analyze] [-core] formula.cnf proof.trace
//
// Exit status: 0 when the proof is valid, 2 when the daemon rejected it
// (the solver or its trace generation is buggy), 3 when the daemon applied
// backpressure (HTTP 429/503 — retry later), 1 on usage, I/O, or transport
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"satcheck"
	"satcheck/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8347", "zcheckd base URL")
	method := fs.String("method", "df", "checker strategy: df, bf, hybrid, parallel, or kernel")
	formatName := fs.String("format", "native", "proof encoding: native, drat, or lrat")
	jobs := fs.Int("j", 0, "parallel only: requested worker count (server caps it at its pool size)")
	memLimitMB := fs.Int64("mem-limit-mb", 0, "per-job checker memory budget in MB (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
	analyze := fs.Bool("analyze", false, "also request proof-graph statistics")
	core := fs.Bool("core", false, "print the unsatisfiable core clause IDs (df/hybrid)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: zcheck [flags] formula.cnf proof.trace")
		fs.PrintDefaults()
		return 1
	}

	var m satcheck.Method
	switch *method {
	case "df", "depth-first":
		m = satcheck.DepthFirst
	case "bf", "breadth-first":
		m = satcheck.BreadthFirst
	case "hybrid":
		m = satcheck.Hybrid
	case "parallel":
		m = satcheck.Parallel
	case "kernel":
		m = satcheck.Kernel
	default:
		fmt.Fprintf(stderr, "zcheck: unknown method %q\n", *method)
		return 1
	}
	format, err := satcheck.ParseProofFormat(*formatName)
	if err != nil {
		fmt.Fprintln(stderr, "zcheck:", err)
		return 1
	}
	opts := server.JobOptions{
		Method:      m,
		Format:      format,
		MemLimitMB:  *memLimitMB,
		Timeout:     *timeout,
		Analyze:     *analyze,
		IncludeCore: *core,
		Parallelism: *jobs,
	}

	resp, err := postFiles(*addr, opts, fs.Arg(0), fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "zcheck:", err)
		return 1
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to verdict decoding.
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		retry := resp.Header.Get("Retry-After")
		fmt.Fprintf(stderr, "zcheck: server busy (%d): %s; retry after %ss\n", resp.StatusCode, er.Error, retry)
		return 3
	default:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		fmt.Fprintf(stderr, "zcheck: HTTP %d: %s\n", resp.StatusCode, er.Error)
		return 1
	}

	var cr server.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		fmt.Fprintln(stderr, "zcheck: decoding response:", err)
		return 1
	}
	return printVerdict(stdout, &cr, *core)
}

// printVerdict renders the daemon's answer in zverify's output dialect so
// shell pipelines can switch between local and remote checking untouched.
func printVerdict(stdout io.Writer, cr *server.CheckResponse, wantCore bool) int {
	cachedNote := ""
	if cr.Cached {
		cachedNote = " [cached]"
	}
	if cr.Verdict != server.VerdictValid {
		fmt.Fprintf(stdout, "RESULT: CHECK FAILED (%s)%s\n", cr.Failure.Kind, cachedNote)
		fmt.Fprintf(stdout, "kind=%s clause=%d step=%d\n", cr.Failure.Kind, cr.Failure.ClauseID, cr.Failure.Step)
		fmt.Fprintf(stdout, "detail: %s\n", cr.Failure.Detail)
		return 2
	}
	r := cr.Result
	fmt.Fprintf(stdout, "RESULT: PROOF VALID — the formula is unsatisfiable%s\n", cachedNote)
	fmt.Fprintf(stdout, "method=%s server-time=%.1fms learned=%d built=%d (%.1f%%) resolutions=%d peak-mem=%dKB\n",
		cr.Method, cr.ElapsedMS, r.LearnedTotal, r.ClausesBuilt,
		100*r.BuiltFraction, r.ResolutionSteps, r.PeakMemWords*4/1024)
	if r.CoreSize > 0 {
		fmt.Fprintf(stdout, "core: %d original clauses, %d vars involved\n", r.CoreSize, r.CoreVars)
		if wantCore {
			for _, id := range r.CoreClauses {
				fmt.Fprintln(stdout, id)
			}
		}
	}
	if s := cr.Stats; s != nil {
		switch cr.Format {
		case "drat":
			fmt.Fprintf(stdout, "proof: added=%d deleted=%d avg-clause-len=%.1f proof-ints=%d\n",
				s.NumLearned, s.NumDeleted, s.AvgChain, s.TraceInts)
		case "lrat":
			fmt.Fprintf(stdout, "proof: depth=%d needed=%d/%d deleted=%d avg-hints=%.1f proof-ints=%d\n",
				s.Depth, s.NeededLearned, s.NumLearned, s.NumDeleted, s.AvgChain, s.TraceInts)
		default:
			fmt.Fprintf(stdout, "proof: depth=%d needed-learned=%d/%d avg-chain=%.1f trace-ints=%d\n",
				s.Depth, s.NeededLearned, s.NumLearned, s.AvgChain, s.TraceInts)
		}
	}
	return 0
}

// postFiles streams the two files as one multipart body over an io.Pipe —
// the client never holds a proof in memory, mirroring the server's
// streaming ingest.
func postFiles(addr string, opts server.JobOptions, formulaPath, tracePath string) (*http.Response, error) {
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	go func() {
		err := writeParts(mw, formulaPath, tracePath)
		if cerr := mw.Close(); err == nil {
			err = cerr
		}
		pw.CloseWithError(err)
	}()

	url := addr + "/v1/check?" + opts.Query().Encode()
	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	client := &http.Client{Timeout: transportTimeout(opts.Timeout)}
	return client.Do(req)
}

// transportTimeout gives the HTTP client headroom beyond the job deadline;
// with no explicit deadline the transport waits indefinitely (the server
// enforces its own default).
func transportTimeout(jobTimeout time.Duration) time.Duration {
	if jobTimeout <= 0 {
		return 0
	}
	return jobTimeout + 30*time.Second
}

func writeParts(mw *multipart.Writer, formulaPath, tracePath string) error {
	for _, p := range []struct{ field, path string }{
		{"formula", formulaPath},
		{"trace", tracePath},
	} {
		f, err := os.Open(p.path)
		if err != nil {
			return err
		}
		w, err := mw.CreateFormFile(p.field, filepath.Base(p.path))
		if err == nil {
			_, err = io.Copy(w, f)
		}
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}
