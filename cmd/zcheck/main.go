// Command zcheck is the client for the zcheckd proof-checking daemon: it
// uploads a DIMACS formula and a solver trace (any encoding — ASCII,
// binary, either gzipped) and prints the daemon's structured verdict in the
// same shape as the local zverify tool.
//
// Usage:
//
//	zcheck [-addr http://localhost:8347] [-method df|bf|hybrid|parallel|kernel]
//	       [-format native|drat|lrat] [-j N] [-mem-limit-mb N] [-timeout D]
//	       [-analyze] [-core] [-retries N] formula.cnf proof.trace
//
// Backpressure answers (HTTP 429/503) and transport errors are retried up
// to -retries times with jittered exponential backoff, honoring the
// server's Retry-After hint.
//
// Against a cluster router (zcheckd -cluster), -async submits through the
// job API instead of waiting synchronously: the job is queued cluster-side
// and zcheck polls GET /v1/jobs/{id} every -poll until the job is terminal
// (with -poll 0 it just prints the job ID and exits). -class, -tenant, and
// -webhook pass the cluster scheduling knobs through. Poll requests apply
// the same -retries budget: transport errors and 429/503 answers back off
// and retry instead of abandoning a job the cluster is still running.
//
//	zcheck -certify [-format native|lrat] [flags] formula.cnf kernelproof proof.drat
//
// -certify submits three artifacts to the daemon's fail-closed dual-checker
// policy (policy=dual, docs/CERTIFY.md): the formula, a kernel-pipeline
// input (a native resolution trace, or an LRAT proof with -format lrat),
// and a clausal DRAT proof. The answer is a signed verdict bundle, printed
// as JSON; exit 0 only for CERTIFIED_UNSAT, 2 for CERTIFY_FAIL.
//
// Exit status: 0 when the proof is valid (certified, for -certify), 2 when
// the daemon rejected it (the solver or its trace generation is buggy), 3
// when the daemon applied backpressure (HTTP 429/503 — retry later) even
// after -retries attempts, 1 on usage, I/O, or transport errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"satcheck"
	"satcheck/internal/cluster"
	"satcheck/internal/server"
	"satcheck/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8347", "zcheckd base URL")
	method := fs.String("method", "df", "checker strategy: df, bf, hybrid, parallel, kernel, or ooc")
	formatName := fs.String("format", "native", "proof encoding: native, drat, or lrat")
	jobs := fs.Int("j", 0, "parallel only: requested worker count (server caps it at its pool size)")
	memLimitMB := fs.Int64("mem-limit-mb", 0, "per-job checker memory budget in MB (0 = unlimited)")
	memBudget := fs.String("mem-budget", "", "ooc only: window-shifting memory budget, e.g. 64MiB (mem_budget= on the wire)")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
	analyze := fs.Bool("analyze", false, "also request proof-graph statistics")
	core := fs.Bool("core", false, "print the unsatisfiable core clause IDs (df/hybrid)")
	retries := fs.Int("retries", 0, "retry 429/503 and transport errors this many times (jittered exponential backoff)")
	retryBase := fs.Duration("retry-base", 200*time.Millisecond, "first retry delay; doubles per attempt")
	async := fs.Bool("async", false, "submit via the cluster job API and poll instead of waiting synchronously")
	pollEvery := fs.Duration("poll", 500*time.Millisecond, "async: poll interval (0: print the job ID and exit)")
	class := fs.String("class", "", "async: scheduling class, interactive or batch (cluster default: batch)")
	tenant := fs.String("tenant", "", "tenant name for the cluster's per-tenant quotas (X-Tenant header)")
	webhook := fs.String("webhook", "", "async: URL the cluster POSTs the terminal job status to")
	certify := fs.Bool("certify", false, "submit to the fail-closed dual-checker policy (3 file args: formula, trace-or-lrat, drat); exit 0 only for CERTIFIED_UNSAT")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *certify {
		if fs.NArg() != 3 {
			fmt.Fprintln(stderr, "usage: zcheck -certify [flags] formula.cnf kernelproof proof.drat")
			fs.PrintDefaults()
			return 1
		}
	} else if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: zcheck [flags] formula.cnf proof.trace")
		fs.PrintDefaults()
		return 1
	}

	var m satcheck.Method
	switch *method {
	case "df", "depth-first":
		m = satcheck.DepthFirst
	case "bf", "breadth-first":
		m = satcheck.BreadthFirst
	case "hybrid":
		m = satcheck.Hybrid
	case "parallel":
		m = satcheck.Parallel
	case "kernel":
		m = satcheck.Kernel
	case "ooc":
		m = satcheck.OOC
	default:
		fmt.Fprintf(stderr, "zcheck: unknown method %q\n", *method)
		return 1
	}
	format, err := satcheck.ParseProofFormat(*formatName)
	if err != nil {
		fmt.Fprintln(stderr, "zcheck:", err)
		return 1
	}
	var memBudgetBytes int64
	if *memBudget != "" {
		if memBudgetBytes, err = satcheck.ParseByteSize(*memBudget); err != nil {
			fmt.Fprintln(stderr, "zcheck:", err)
			return 1
		}
	}
	opts := server.JobOptions{
		Method:         m,
		Format:         format,
		MemLimitMB:     *memLimitMB,
		MemBudgetBytes: memBudgetBytes,
		Timeout:        *timeout,
		Analyze:        *analyze,
		IncludeCore:    *core,
		Parallelism:    *jobs,
	}

	cl := client{
		addr:      *addr,
		tenant:    *tenant,
		retries:   *retries,
		retryBase: *retryBase,
		timeout:   *timeout,
		parts: []filePart{
			{"formula", fs.Arg(0)},
			{"trace", fs.Arg(1)},
		},
		stderr: stderr,
	}

	if *certify {
		if *async {
			fmt.Fprintln(stderr, "zcheck: -certify is synchronous; drop -async")
			return 1
		}
		kernelField := "trace"
		switch format {
		case satcheck.FormatNative:
		case satcheck.FormatLRAT:
			kernelField = "lrat"
		default:
			fmt.Fprintf(stderr, "zcheck: -certify takes -format native (a resolution trace) or lrat for the kernel-pipeline input, not %s\n", format)
			return 1
		}
		cl.parts = []filePart{
			{"formula", fs.Arg(0)},
			{kernelField, fs.Arg(1)},
			{"drat", fs.Arg(2)},
		}
		return cl.runCertify(stdout, opts)
	}
	if *async {
		return cl.runAsync(stdout, opts, *class, *webhook, *pollEvery, *core)
	}
	return cl.runSync(stdout, opts, *core)
}

// filePart is one multipart upload: a form field name and the file behind it.
type filePart struct {
	field, path string
}

// client carries one invocation's transport state.
type client struct {
	addr      string
	tenant    string
	retries   int
	retryBase time.Duration
	timeout   time.Duration
	parts     []filePart
	stderr    io.Writer
}

func (c *client) runSync(stdout io.Writer, opts server.JobOptions, wantCore bool) int {
	u := c.addr + "/v1/check?" + opts.Query().Encode()
	resp, err := c.postWithRetry(u)
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck:", err)
		return 1
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to verdict decoding.
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		retry := resp.Header.Get("Retry-After")
		fmt.Fprintf(c.stderr, "zcheck: server busy (%d): %s; retry after %ss\n", resp.StatusCode, er.Error, retry)
		return 3
	default:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		fmt.Fprintf(c.stderr, "zcheck: HTTP %d: %s\n", resp.StatusCode, er.Error)
		return 1
	}

	var cr server.CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		fmt.Fprintln(c.stderr, "zcheck: decoding response:", err)
		return 1
	}
	return printVerdict(stdout, &cr, wantCore)
}

// runCertify submits the three artifacts to the daemon's fail-closed dual
// policy and prints the signed verdict bundle. Only CERTIFIED_UNSAT exits 0;
// a CERTIFY_FAIL bundle is the solver's problem (exit 2, like a rejection).
func (c *client) runCertify(stdout io.Writer, opts server.JobOptions) int {
	q := opts.Query()
	q.Set("policy", "dual")
	resp, err := c.postWithRetry(c.addr + "/v1/check?" + q.Encode())
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck:", err)
		return 1
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		fmt.Fprintf(c.stderr, "zcheck: server busy (%d): %s; retry after %ss\n",
			resp.StatusCode, er.Error, resp.Header.Get("Retry-After"))
		return 3
	default:
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		fmt.Fprintf(c.stderr, "zcheck: HTTP %d: %s\n", resp.StatusCode, er.Error)
		return 1
	}

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck: reading bundle:", err)
		return 1
	}
	bundle, err := satcheck.ParseCertifyBundle(body)
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck: decoding bundle:", err)
		return 1
	}
	pretty, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", pretty)
	if !bundle.Certified() {
		fmt.Fprintf(c.stderr, "zcheck: CERTIFY_FAIL: %s\n", bundle.Reason)
		return 2
	}
	return 0
}

// runAsync submits through POST /v1/jobs and polls the job to a terminal
// state.
func (c *client) runAsync(stdout io.Writer, opts server.JobOptions, class, webhook string, pollEvery time.Duration, wantCore bool) int {
	q := opts.Query()
	if class != "" {
		q.Set("class", class)
	}
	if webhook != "" {
		q.Set("webhook", webhook)
	}
	resp, err := c.postWithRetry(c.addr + "/v1/jobs?" + q.Encode())
	if err != nil {
		fmt.Fprintln(c.stderr, "zcheck:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			fmt.Fprintf(c.stderr, "zcheck: server busy (%d): %s\n", resp.StatusCode, er.Error)
			return 3
		}
		fmt.Fprintf(c.stderr, "zcheck: HTTP %d: %s\n", resp.StatusCode, er.Error)
		return 1
	}
	var sub cluster.JobSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		fmt.Fprintln(c.stderr, "zcheck: decoding job submit response:", err)
		return 1
	}
	if pollEvery <= 0 {
		fmt.Fprintf(stdout, "job %s %s\n", sub.ID, sub.State)
		return 0
	}
	fmt.Fprintf(c.stderr, "zcheck: job %s queued, polling every %v\n", sub.ID, pollEvery)

	httpc := &http.Client{Timeout: 30 * time.Second}
	attempt := 0
	for {
		js, err := c.pollOnce(httpc, sub.ID)
		if err != nil {
			var te *transientError
			if errors.As(err, &te) && attempt < c.retries {
				// The same jittered backoff as submission: a transient poll
				// failure must not abandon a job the cluster is still
				// running. Retry-After wins when the server asks for more.
				delay := backoffDelay(c.retryBase, attempt)
				if te.hint > delay {
					delay = te.hint
				}
				attempt++
				fmt.Fprintf(c.stderr, "zcheck: poll failed (%v); retrying in %v (attempt %d of %d)\n",
					te, delay.Round(time.Millisecond), attempt, c.retries)
				time.Sleep(delay)
				continue
			}
			fmt.Fprintln(c.stderr, "zcheck:", err)
			if errors.As(err, &te) && te.backpressure {
				return 3
			}
			return 1
		}
		attempt = 0 // a successful poll refills the retry budget
		switch js.State {
		case store.StateDone:
			var cr server.CheckResponse
			if err := json.Unmarshal(js.Check, &cr); err != nil {
				fmt.Fprintln(c.stderr, "zcheck: decoding job result:", err)
				return 1
			}
			return printVerdict(stdout, &cr, wantCore)
		case store.StateFailed:
			fmt.Fprintf(c.stderr, "zcheck: job %s failed: %s\n", js.ID, js.Error)
			return 1
		}
		time.Sleep(pollEvery)
	}
}

// transientError marks a poll failure worth retrying: a transport error, or
// a 429/503 backpressure answer (with the server's Retry-After hint).
type transientError struct {
	err          error
	hint         time.Duration
	backpressure bool
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func (c *client) pollOnce(httpc *http.Client, id string) (*cluster.JobStatusResponse, error) {
	resp, err := httpc.Get(c.addr + "/v1/jobs/" + url.PathEscape(id))
	if err != nil {
		return nil, &transientError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		perr := fmt.Errorf("polling job %s: HTTP %d: %s", id, resp.StatusCode, er.Error)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			var hint time.Duration
			if sec, herr := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); herr == nil {
				hint = sec
			}
			return nil, &transientError{err: perr, hint: hint, backpressure: true}
		}
		return nil, perr
	}
	var js cluster.JobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return nil, &transientError{err: err}
	}
	return &js, nil
}

// postWithRetry posts the two files, retrying transport errors and
// backpressure answers (429/503) up to c.retries times. Each retry rebuilds
// the streaming body from the source files and sleeps base·2^attempt with
// ±50% jitter — or the server's Retry-After hint when that is longer — so a
// fleet of zcheck clients backing off never re-arrives in lockstep.
func (c *client) postWithRetry(url string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.postFiles(url)
		retryable := false
		var hint time.Duration
		if err != nil {
			retryable = true
		} else if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			retryable = true
			if sec, perr := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); perr == nil {
				hint = sec
			}
		}
		if !retryable || attempt >= c.retries {
			return resp, err
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		delay := backoffDelay(c.retryBase, attempt)
		if hint > delay {
			delay = hint
		}
		fmt.Fprintf(c.stderr, "zcheck: retrying in %v (attempt %d of %d)\n", delay.Round(time.Millisecond), attempt+1, c.retries)
		time.Sleep(delay)
	}
}

// backoffDelay is base·2^attempt with ±50% jitter, capped at 10s.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// printVerdict renders the daemon's answer in zverify's output dialect so
// shell pipelines can switch between local and remote checking untouched.
func printVerdict(stdout io.Writer, cr *server.CheckResponse, wantCore bool) int {
	cachedNote := ""
	if cr.Cached {
		cachedNote = " [cached]"
	}
	if cr.Verdict != server.VerdictValid {
		fmt.Fprintf(stdout, "RESULT: CHECK FAILED (%s)%s\n", cr.Failure.Kind, cachedNote)
		fmt.Fprintf(stdout, "kind=%s clause=%d step=%d\n", cr.Failure.Kind, cr.Failure.ClauseID, cr.Failure.Step)
		fmt.Fprintf(stdout, "detail: %s\n", cr.Failure.Detail)
		return 2
	}
	r := cr.Result
	fmt.Fprintf(stdout, "RESULT: PROOF VALID — the formula is unsatisfiable%s\n", cachedNote)
	fmt.Fprintf(stdout, "method=%s server-time=%.1fms learned=%d built=%d (%.1f%%) resolutions=%d peak-mem=%dKB\n",
		cr.Method, cr.ElapsedMS, r.LearnedTotal, r.ClausesBuilt,
		100*r.BuiltFraction, r.ResolutionSteps, r.PeakMemWords*4/1024)
	if r.OOCWindows > 0 {
		fmt.Fprintf(stdout, "ooc: windows=%d spilled-clauses=%d spilled-bytes=%d mem-budget=%dKB\n",
			r.OOCWindows, r.SpilledClauses, r.SpilledBytes, r.PeakMemBoundWords*4/1024)
	}
	if r.CoreSize > 0 {
		fmt.Fprintf(stdout, "core: %d original clauses, %d vars involved\n", r.CoreSize, r.CoreVars)
		if wantCore {
			for _, id := range r.CoreClauses {
				fmt.Fprintln(stdout, id)
			}
		}
	}
	if s := cr.Stats; s != nil {
		switch cr.Format {
		case "drat":
			fmt.Fprintf(stdout, "proof: added=%d deleted=%d avg-clause-len=%.1f proof-ints=%d\n",
				s.NumLearned, s.NumDeleted, s.AvgChain, s.TraceInts)
		case "lrat":
			fmt.Fprintf(stdout, "proof: depth=%d needed=%d/%d deleted=%d avg-hints=%.1f proof-ints=%d\n",
				s.Depth, s.NeededLearned, s.NumLearned, s.NumDeleted, s.AvgChain, s.TraceInts)
		default:
			fmt.Fprintf(stdout, "proof: depth=%d needed-learned=%d/%d avg-chain=%.1f trace-ints=%d\n",
				s.Depth, s.NeededLearned, s.NumLearned, s.AvgChain, s.TraceInts)
		}
	}
	return 0
}

// postFiles streams the part files as one multipart body over an io.Pipe —
// the client never holds a proof in memory, mirroring the server's
// streaming ingest.
func (c *client) postFiles(url string) (*http.Response, error) {
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	go func() {
		err := writeParts(mw, c.parts)
		if cerr := mw.Close(); err == nil {
			err = cerr
		}
		pw.CloseWithError(err)
	}()

	req, err := http.NewRequest(http.MethodPost, url, pr)
	if err != nil {
		pr.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	if c.tenant != "" {
		req.Header.Set("X-Tenant", c.tenant)
	}
	client := &http.Client{Timeout: transportTimeout(c.timeout)}
	return client.Do(req)
}

// transportTimeout gives the HTTP client headroom beyond the job deadline;
// with no explicit deadline the transport waits indefinitely (the server
// enforces its own default).
func transportTimeout(jobTimeout time.Duration) time.Duration {
	if jobTimeout <= 0 {
		return 0
	}
	return jobTimeout + 30*time.Second
}

func writeParts(mw *multipart.Writer, parts []filePart) error {
	for _, p := range parts {
		f, err := os.Open(p.path)
		if err != nil {
			return err
		}
		w, err := mw.CreateFormFile(p.field, filepath.Base(p.path))
		if err == nil {
			_, err = io.Copy(w, f)
		}
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}
