// Command zproof works with resolution proofs beyond the core
// check/validate flow:
//
//	zproof export -cnf f.cnf -trace proof.trace -o proof.tc
//	    convert a satcheck trace into the self-contained TraceCheck clause
//	    format (every derived clause with its literals and chain), the
//	    precursor of today's DRUP/DRAT proof formats;
//
//	zproof check -cnf f.cnf [-format tc|drat|lrat|er] [-mem-budget 64MiB] proof.tc
//	    independently verify a proof file against the formula: a TraceCheck
//	    file (default), a clausal DRUP/DRAT proof, an LRAT proof, or an
//	    extended-resolution proof from the BDD backend (checked through the
//	    ER→LRAT bridge); -mem-budget checks drat/lrat out of core, window by
//	    window under the budget (see docs/OOC.md);
//
//	zproof stats -cnf f.cnf -trace proof.trace [-format native|drat|lrat|er]
//	    print proof statistics: resolution-graph analytics for native traces
//	    and LRAT (needed clauses, core size, proof depth, chain/hint
//	    lengths), add/delete counts for DRAT, extension-variable counts and
//	    definition depth for ER;
//
//	zproof trim -cnf f.cnf -trace proof.trace -o trimmed.trace
//	    rewrite the trace keeping only the clauses the empty-clause
//	    derivation reaches (renumbered; still a valid trace for the same
//	    formula).
//
// Exit status: 0 on success, 2 when verification fails, 1 on usage/IO
// errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"satcheck"
	"satcheck/internal/bdd"
	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/interp"
	"satcheck/internal/kernelcheck"
	"satcheck/internal/ooc"
	"satcheck/internal/proofstat"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
	"satcheck/internal/tracecheck"
	"satcheck/internal/trim"
)

func main() {
	os.Exit(run())
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage:
  zproof export -cnf formula.cnf -trace proof.trace [-o proof.tc]
  zproof check  -cnf formula.cnf [-format tc|drat|lrat|er] [-mem-budget 64MiB] proof.tc
  zproof stats  -cnf formula.cnf -trace proof.trace [-format native|drat|lrat|er]
  zproof trim   -cnf formula.cnf -trace proof.trace -o trimmed.trace
  zproof interpolate -cnf formula.cnf -trace proof.trace -split K`)
	return 1
}

func run() int {
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "export":
		return runExport(os.Args[2:])
	case "check":
		return runCheck(os.Args[2:])
	case "stats":
		return runStats(os.Args[2:])
	case "interpolate":
		return runInterpolate(os.Args[2:])
	case "trim":
		return runTrim(os.Args[2:])
	default:
		return usage()
	}
}

func runTrim(args []string) int {
	fs := flag.NewFlagSet("trim", flag.ContinueOnError)
	cnfPath := fs.String("cnf", "", "DIMACS formula")
	tracePath := fs.String("trace", "", "satcheck resolution trace")
	out := fs.String("o", "", "output trace file (default stdout)")
	format := fs.String("format", "ascii", "output encoding: ascii or binary")
	if fs.Parse(args) != nil {
		return 1
	}
	f, ok := loadCNF(*cnfPath)
	if !ok {
		return 1
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "zproof: -trace is required")
		return 1
	}
	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zproof:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	encode := func(w io.Writer) trace.Sink { return trace.NewASCIIWriter(w) }
	if *format == "binary" {
		encode = func(w io.Writer) trace.Sink { return trace.NewBinaryWriter(w) }
	}
	stats, err := trim.File(f.NumClauses(), *tracePath, w, encode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof: trim:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "kept %d of %d learned clauses (%.1f%%), %d of %d source refs\n",
		stats.LearnedOut, stats.LearnedIn, 100*stats.KeptFraction(), stats.SourcesOut, stats.SourcesIn)
	return 0
}

func loadCNF(path string) (*cnf.Formula, bool) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "zproof: -cnf is required")
		return nil, false
	}
	f, err := cnf.ParseDimacsFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof:", err)
		return nil, false
	}
	return f, true
}

func runExport(args []string) int {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	cnfPath := fs.String("cnf", "", "DIMACS formula")
	tracePath := fs.String("trace", "", "satcheck resolution trace")
	out := fs.String("o", "", "output TraceCheck file (default stdout)")
	if fs.Parse(args) != nil {
		return 1
	}
	f, ok := loadCNF(*cnfPath)
	if !ok {
		return 1
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "zproof: -trace is required")
		return 1
	}
	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zproof:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	stats, err := tracecheck.Export(f, trace.FileSource(*tracePath), w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof: export:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "exported %d original + %d derived clauses, %d resolutions, %d bytes\n",
		stats.Originals, stats.Derived, stats.Resolutions, stats.Bytes)
	return 0
}

func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	cnfPath := fs.String("cnf", "", "DIMACS formula (omit to accept arbitrary axioms; required for drat/lrat)")
	format := fs.String("format", "tc", "proof encoding: tc (TraceCheck), drat, lrat, or er")
	memBudget := fs.String("mem-budget", "", "check drat/lrat out of core under this memory budget (e.g. 64MiB)")
	if fs.Parse(args) != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "zproof: check needs exactly one proof file")
		return 1
	}
	var copts checker.Options
	if *memBudget != "" {
		b, err := satcheck.ParseByteSize(*memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zproof:", err)
			return 1
		}
		copts.MemBudgetBytes = b
	}
	switch *format {
	case "drat", "drup", "lrat", "er":
		f, ok := loadCNF(*cnfPath)
		if !ok {
			return 1
		}
		var err error
		switch {
		case *format == "er":
			if *memBudget != "" {
				fmt.Fprintln(os.Stderr, "zproof: -mem-budget does not apply to er proofs (extension definitions need the full database)")
				return 1
			}
			err = checkER(f, fs.Arg(0))
		case *format == "lrat" && *memBudget != "":
			// A set budget routes through the out-of-core checker: the same
			// kernel, window by window (see docs/OOC.md).
			_, err = ooc.CheckLRAT(f, drat.FileSource(fs.Arg(0)), copts)
		case *format == "lrat":
			_, err = kernelcheck.CheckLRAT(f, drat.FileSource(fs.Arg(0)), copts)
		case *memBudget != "":
			_, err = ooc.CheckDRAT(f, drat.FileSource(fs.Arg(0)), copts)
		default:
			// Forward-check the DRAT proof, then verify the recorded hints in
			// the trusted kernel — the same gate every other format passes.
			_, err = kernelcheck.KernelCheckDRAT(f, drat.FileSource(fs.Arg(0)), copts)
		}
		if err != nil {
			var ce *checker.CheckError
			if errors.As(err, &ce) {
				fmt.Printf("RESULT: CHECK FAILED (%s)\n", ce.Kind)
				fmt.Printf("kind=%s clause=%d step=%d\n", ce.Kind, ce.ClauseID, ce.Step)
				fmt.Printf("detail: %v\n", ce)
				return 2
			}
			fmt.Fprintln(os.Stderr, "zproof:", err)
			return 1
		}
		fmt.Printf("RESULT: PROOF VALID (%s)\n", *format)
		return 0
	case "tc":
		// TraceCheck path below.
	default:
		fmt.Fprintf(os.Stderr, "zproof: unknown proof format %q (want tc, drat, lrat, or er)\n", *format)
		return 1
	}
	var f *cnf.Formula
	if *cnfPath != "" {
		var ok bool
		if f, ok = loadCNF(*cnfPath); !ok {
			return 1
		}
	}
	fh, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof:", err)
		return 1
	}
	defer fh.Close()
	clauses, err := tracecheck.Parse(fh)
	if err != nil {
		fmt.Printf("RESULT: CHECK FAILED (%s)\n", checker.FailTrace)
		fmt.Printf("kind=%s\n", checker.FailTrace)
		fmt.Printf("detail: %v\n", err)
		return 2
	}
	stats, err := tracecheck.Verify(f, clauses)
	if err != nil {
		fmt.Printf("RESULT: CHECK FAILED (%s)\n", checker.FailResolution)
		fmt.Printf("kind=%s\n", checker.FailResolution)
		fmt.Printf("detail: %v\n", err)
		return 2
	}
	fmt.Printf("RESULT: PROOF VALID (%d originals, %d derived, %d resolutions)\n",
		stats.Originals, stats.Derived, stats.Resolutions)
	return 0
}

// checkER parses an extended-resolution proof and validates it through the
// ER→LRAT bridge. A proof that fails to parse is a verification failure, not
// an IO error: the file was readable but is not a proof.
func checkER(f *cnf.Formula, path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	p, err := bdd.ParseER(fh)
	if err != nil {
		return &checker.CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: -1, Err: err}
	}
	_, err = bdd.CheckER(f, p, checker.Options{})
	return err
}

func runStats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	cnfPath := fs.String("cnf", "", "DIMACS formula")
	tracePath := fs.String("trace", "", "proof input: resolution trace, DRAT, LRAT, or ER file per -format")
	format := fs.String("format", "native", "proof encoding: native, drat, lrat, or er")
	if fs.Parse(args) != nil {
		return 1
	}
	f, ok := loadCNF(*cnfPath)
	if !ok {
		return 1
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "zproof: -trace is required")
		return 1
	}
	var st *proofstat.Stats
	var err error
	switch *format {
	case "", "native":
		st, err = proofstat.Analyze(f, trace.FileSource(*tracePath))
	case "drat", "drup":
		st, err = proofstat.AnalyzeDRAT(f, drat.FileSource(*tracePath))
	case "lrat":
		st, err = proofstat.AnalyzeLRAT(f, drat.FileSource(*tracePath))
	case "er":
		st, err = proofstat.AnalyzeER(f, drat.FileSource(*tracePath))
	default:
		fmt.Fprintf(os.Stderr, "zproof: unknown proof format %q (want native, drat, lrat, or er)\n", *format)
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof:", err)
		return 2
	}
	switch st.Format {
	case "drat":
		fmt.Printf("original clauses: %d\n", st.NumOriginal)
		fmt.Printf("added clauses:    %d\n", st.NumLearned)
		fmt.Printf("deleted clauses:  %d\n", st.NumDeleted)
		fmt.Printf("clause length:    avg %.1f, max %d\n", st.AvgChain(), st.ChainMax)
		fmt.Printf("proof integers:   %d\n", st.TraceInts)
	case "lrat":
		fmt.Printf("original clauses: %d\n", st.NumOriginal)
		fmt.Printf("added clauses:    %d\n", st.NumLearned)
		fmt.Printf("deleted clauses:  %d\n", st.NumDeleted)
		fmt.Printf("needed added:     %d (%.1f%%)\n", st.NeededLearned, 100*st.NeededFraction())
		fmt.Printf("core originals:   %d (%.1f%%)\n", st.NeededOriginal,
			100*float64(st.NeededOriginal)/float64(st.NumOriginal))
		fmt.Printf("proof depth:      %d\n", st.Depth)
		fmt.Printf("hint count:       avg %.1f, max %d\n", st.AvgChain(), st.ChainMax)
		fmt.Printf("proof integers:   %d\n", st.TraceInts)
	case "er":
		fmt.Printf("original clauses: %d\n", st.NumOriginal)
		fmt.Printf("added clauses:    %d\n", st.NumLearned)
		fmt.Printf("extension vars:   %d\n", st.Extensions)
		fmt.Printf("ext def depth:    %d\n", st.ExtDepthMax)
		fmt.Printf("needed added:     %d (%.1f%%)\n", st.NeededLearned, 100*st.NeededFraction())
		fmt.Printf("core originals:   %d (%.1f%%)\n", st.NeededOriginal,
			100*float64(st.NeededOriginal)/float64(st.NumOriginal))
		fmt.Printf("proof depth:      %d\n", st.Depth)
		fmt.Printf("hint count:       avg %.1f, max %d\n", st.AvgChain(), st.ChainMax)
		fmt.Printf("proof integers:   %d\n", st.TraceInts)
	default:
		fmt.Printf("original clauses: %d\n", st.NumOriginal)
		fmt.Printf("learned clauses:  %d\n", st.NumLearned)
		fmt.Printf("needed learned:   %d (%.1f%%)\n", st.NeededLearned, 100*st.NeededFraction())
		fmt.Printf("core originals:   %d (%.1f%%)\n", st.NeededOriginal,
			100*float64(st.NeededOriginal)/float64(st.NumOriginal))
		fmt.Printf("proof depth:      %d\n", st.Depth)
		fmt.Printf("chain length:     avg %.1f, max %d\n", st.AvgChain(), st.ChainMax)
		fmt.Printf("level-0 records:  %d\n", st.Level0)
		fmt.Printf("trace integers:   %d\n", st.TraceInts)
	}
	return 0
}

func runInterpolate(args []string) int {
	fs := flag.NewFlagSet("interpolate", flag.ContinueOnError)
	cnfPath := fs.String("cnf", "", "DIMACS formula")
	tracePath := fs.String("trace", "", "satcheck resolution trace")
	split := fs.Int("split", 0, "clause count of the A side (first -split clauses form A)")
	verify := fs.Bool("verify", true, "machine-check the interpolant properties with the solver")
	if fs.Parse(args) != nil {
		return 1
	}
	f, ok := loadCNF(*cnfPath)
	if !ok {
		return 1
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "zproof: -trace is required")
		return 1
	}
	if *split <= 0 || *split >= f.NumClauses() {
		fmt.Fprintf(os.Stderr, "zproof: -split must be in (0, %d)\n", f.NumClauses())
		return 1
	}
	inA := interp.SplitFirstK(f, *split)
	it, err := interp.Compute(f, trace.FileSource(*tracePath), inA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zproof: interpolate:", err)
		return 2
	}
	fmt.Printf("interpolant: %d gates over %d shared variables\n", it.Gates, len(it.Vars))
	if *verify {
		if err := it.VerifyAgainst(f, inA, solver.Options{}); err != nil {
			fmt.Printf("RESULT: INTERPOLANT INVALID: %v\n", err)
			return 2
		}
		fmt.Println("RESULT: INTERPOLANT VERIFIED (A ⊨ I; I ∧ B unsat; shared vocabulary)")
	}
	return 0
}
