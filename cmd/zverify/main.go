// Command zverify is the independent resolution-based checker: given the
// original DIMACS formula and the trace zsat produced for an UNSAT claim, it
// verifies that the empty clause is derivable from the original clauses by
// resolution — without trusting the solver.
//
// Usage:
//
//	zverify [-method df|bf|hybrid|parallel|kernel|ooc] [-format native|drat|lrat]
//	        [-j N] [-mem-limit-mb N] [-mem-budget 64MiB] [-counts-on-disk]
//	        formula.cnf proof.trace
//
// -format selects the proof encoding: the native resolution trace (default),
// a clausal DRUP/DRAT proof (zsat -drup), or LRAT. For DRAT, the method maps
// onto a checking direction: bf checks forward (streaming, no core); df,
// hybrid, and parallel check backward (only the needed lemmas, with an
// unsatisfiable core as the by-product, exactly like their native
// counterparts). The kernel method bridges native traces and DRAT proofs to
// propagation hints and verifies them in the trusted flat-array kernel
// (internal/kernel), producing a core from the hint closure. LRAT verifies
// in the kernel by default; the ooc method runs the same kernel window by
// window, out of core, under the -mem-budget ceiling (see docs/OOC.md),
// with a verdict and core identical to the unconstrained kernel on RUP
// proofs.
//
// Exit status: 0 when the proof is valid, 2 when checking fails (the solver
// or its trace generation is buggy), 1 on usage or I/O errors. Exit 2 is
// reserved for check failures alone: flag errors go through a
// ContinueOnError FlagSet so they exit 1, not flag.ExitOnError's 2.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"satcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	method := fs.String("method", "df", "checker strategy: df, bf, hybrid, parallel, kernel, or ooc")
	formatName := fs.String("format", "native", "proof encoding: native, drat, or lrat")
	jobs := fs.Int("j", 0, "parallel only: worker count (0 = one per available CPU)")
	memLimitMB := fs.Int64("mem-limit-mb", 0, "abort if the checker memory model exceeds this many MB (0 = unlimited)")
	memBudget := fs.String("mem-budget", "", "ooc only: window-shifting memory budget (e.g. 64MiB; default 256MiB)")
	countsOnDisk := fs.Bool("counts-on-disk", false, "bf only: keep use counts in a temp file, computed in ranges")
	countRange := fs.Int("count-range", 1<<20, "bf only: counters per counting pass with -counts-on-disk")
	core := fs.Bool("core", false, "df/hybrid/parallel: print the unsatisfiable core clause IDs")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: zverify [flags] formula.cnf proof.trace")
		fs.PrintDefaults()
		return 1
	}

	var m satcheck.Method
	switch *method {
	case "df", "depth-first":
		m = satcheck.DepthFirst
	case "bf", "breadth-first":
		m = satcheck.BreadthFirst
	case "hybrid":
		m = satcheck.Hybrid
	case "parallel":
		m = satcheck.Parallel
	case "kernel":
		m = satcheck.Kernel
	case "ooc":
		m = satcheck.OOC
	default:
		fmt.Fprintf(stderr, "zverify: unknown method %q\n", *method)
		return 1
	}

	format, err := satcheck.ParseProofFormat(*formatName)
	if err != nil {
		fmt.Fprintln(stderr, "zverify:", err)
		return 1
	}

	f, err := satcheck.ParseDimacsFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "zverify:", err)
		return 1
	}

	opts := satcheck.CheckOptions{
		MemLimitWords: *memLimitMB * (1 << 20) / 4,
		CountsOnDisk:  *countsOnDisk,
		CountRange:    *countRange,
		Parallelism:   *jobs,
	}
	if *memBudget != "" {
		opts.MemBudgetBytes, err = satcheck.ParseByteSize(*memBudget)
		if err != nil {
			fmt.Fprintln(stderr, "zverify:", err)
			return 1
		}
	}
	start := time.Now()
	var res *satcheck.CheckResult
	switch format {
	case satcheck.FormatDRAT:
		res, err = satcheck.CheckDRAT(f, satcheck.ProofFileSource(fs.Arg(1)), m, opts)
	case satcheck.FormatLRAT:
		switch {
		case m == satcheck.OOC:
			res, err = satcheck.CheckLRATOOC(f, satcheck.ProofFileSource(fs.Arg(1)), opts)
		case *core:
			// The plain LRAT kernel path skips core marking; ask for it so
			// -core output (and core hashes) match the other methods.
			res, err = satcheck.CheckLRATCore(f, satcheck.ProofFileSource(fs.Arg(1)), opts)
		default:
			res, err = satcheck.CheckLRAT(f, satcheck.ProofFileSource(fs.Arg(1)), opts)
		}
	default:
		res, err = satcheck.CheckFile(f, fs.Arg(1), m, opts)
	}
	elapsed := time.Since(start)
	if err != nil {
		var ce *satcheck.CheckError
		if errors.As(err, &ce) {
			fmt.Fprintf(stdout, "RESULT: CHECK FAILED (%s)\n", ce.Kind)
			fmt.Fprintf(stdout, "kind=%s clause=%d step=%d\n", ce.Kind, ce.ClauseID, ce.Step)
			fmt.Fprintf(stdout, "detail: %v\n", ce)
			return 2
		}
		fmt.Fprintln(stderr, "zverify:", err)
		return 1
	}
	fmt.Fprintln(stdout, "RESULT: PROOF VALID — the formula is unsatisfiable")
	fmt.Fprintf(stdout, "method=%s format=%s time=%v learned=%d built=%d (%.1f%%) resolutions=%d peak-mem=%dKB\n",
		m, format, elapsed.Round(time.Millisecond), res.LearnedTotal, res.ClausesBuilt,
		100*res.BuiltFraction(), res.ResolutionSteps, res.PeakMemWords*4/1024)
	if res.OOCWindows > 0 {
		fmt.Fprintf(stdout, "ooc: windows=%d spilled-clauses=%d spilled-bytes=%d mem-budget=%dKB\n",
			res.OOCWindows, res.SpilledClauses, res.SpilledBytes, res.PeakMemBoundWords*4/1024)
	}
	if res.CoreClauses != nil {
		fmt.Fprintf(stdout, "core: %d of %d original clauses, %d vars involved\n",
			len(res.CoreClauses), f.NumClauses(), res.CoreVars)
		if *core {
			for _, id := range res.CoreClauses {
				fmt.Fprintln(stdout, id)
			}
		}
	}
	return 0
}
