// Command zsat is the instrumented CDCL SAT solver: it decides a DIMACS CNF
// file and optionally records the resolution trace that lets zverify
// independently validate an UNSAT answer.
//
// Usage:
//
//	zsat [-trace out.trace] [-format ascii|binary] [-drup out.drup]
//	     [-model] [-stats] formula.cnf
//
// -drup additionally records a clausal DRUP proof (checkable by
// `zverify -format drat`), independent of the native trace: a run may record
// either, both, or neither. A ".gz" suffix gzips the proof.
//
// Exit status follows the SAT-competition convention: 10 satisfiable,
// 20 unsatisfiable, 1 error or unknown.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
	"satcheck/internal/walksat"
)

func main() {
	os.Exit(run())
}

func run() int {
	tracePath := flag.String("trace", "", "write the resolution trace to this file")
	drupPath := flag.String("drup", "", "write a clausal DRUP proof to this file (\".gz\" suffix gzips)")
	drupBinary := flag.Bool("drup-binary", false, "use the binary DRAT encoding for -drup")
	format := flag.String("format", "ascii", "trace encoding: ascii or binary")
	gzipTrace := flag.Bool("gzip", false, "gzip-compress the trace (stacks with either encoding)")
	showModel := flag.Bool("model", false, "print the satisfying assignment (v line)")
	showStats := flag.Bool("stats", false, "print solver statistics")
	maxConflicts := flag.Int64("max-conflicts", 0, "abort after this many conflicts (0 = none)")
	local := flag.Bool("local", false, "use WalkSAT local search instead of CDCL (incomplete: answers SAT or UNKNOWN, never UNSAT)")
	seed := flag.Int64("seed", 1, "random seed for -local")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: zsat [flags] formula.cnf")
		flag.PrintDefaults()
		return 1
	}

	f, err := cnf.ParseDimacsFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}

	if *local {
		found, m, stats := walksat.Solve(f, walksat.Options{Seed: *seed})
		if !found {
			fmt.Println("s UNKNOWN")
			return 1
		}
		if bad, ok := cnf.VerifyModel(f, m); !ok {
			fmt.Fprintf(os.Stderr, "zsat: internal: local-search model fails clause %d\n", bad)
			return 1
		}
		fmt.Println("s SATISFIABLE")
		if *showStats {
			fmt.Printf("c tries=%d flips=%d\n", stats.Tries, stats.Flips)
		}
		if *showModel {
			printModel(f, m)
		}
		return 10
	}

	s, err := solver.New(f, solver.Options{MaxConflicts: *maxConflicts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}

	var traceBytes func() int64
	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		defer out.Close()
		var encode func(w io.Writer) trace.Sink
		switch *format {
		case "ascii":
			encode = func(w io.Writer) trace.Sink { return trace.NewASCIIWriter(w) }
		case "binary":
			encode = func(w io.Writer) trace.Sink { return trace.NewBinaryWriter(w) }
		default:
			fmt.Fprintf(os.Stderr, "zsat: unknown trace format %q\n", *format)
			return 1
		}
		if *gzipTrace {
			gz := trace.NewGzipSink(out, encode)
			s.SetTrace(gz)
			traceBytes = gz.BytesWritten
		} else {
			sink := encode(out)
			s.SetTrace(sink)
			switch w := sink.(type) {
			case *trace.ASCIIWriter:
				traceBytes = w.BytesWritten
			case *trace.BinaryWriter:
				traceBytes = w.BytesWritten
			}
		}
	}

	var drupBytes func() int64
	var drupFinish func() error
	if *drupPath != "" {
		out, err := os.Create(*drupPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		defer out.Close()
		var w io.Writer = out
		var gz *gzip.Writer
		if strings.HasSuffix(*drupPath, ".gz") {
			gz = gzip.NewWriter(out)
			w = gz
		}
		var pw *drat.Writer
		if *drupBinary {
			pw = drat.NewBinaryWriter(w)
		} else {
			pw = drat.NewWriter(w)
		}
		s.SetProofSink(pw)
		drupBytes = pw.BytesWritten
		drupFinish = func() error {
			if gz != nil {
				return gz.Close()
			}
			return nil
		}
	}

	status, err := s.Solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	// The solver closed (flushed) the proof writer; finish the gzip stream.
	if drupFinish != nil {
		if err := drupFinish(); err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
	}
	fmt.Printf("s %s\n", status)
	if *showStats {
		st := s.Stats()
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d learned=%d deleted=%d restarts=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Learned, st.Deleted, st.Restarts)
		if traceBytes != nil {
			fmt.Printf("c trace-bytes=%d\n", traceBytes())
		}
		if drupBytes != nil {
			fmt.Printf("c drup-bytes=%d\n", drupBytes())
		}
	}
	switch status {
	case solver.StatusSat:
		if *showModel {
			printModel(f, s.Model())
		}
		return 10
	case solver.StatusUnsat:
		return 20
	default:
		return 1
	}
}

func printModel(f *cnf.Formula, m cnf.Model) {
	fmt.Print("v")
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		d := int(v)
		if m.Value(v) != cnf.True {
			d = -d
		}
		fmt.Printf(" %d", d)
	}
	fmt.Println(" 0")
}
