// Command zsat is the instrumented CDCL SAT solver: it decides a DIMACS CNF
// file and optionally records the resolution trace that lets zverify
// independently validate an UNSAT answer.
//
// Usage:
//
//	zsat [-trace out.trace] [-format ascii|binary] [-drup out.drup]
//	     [-model] [-stats] formula.cnf
//	zsat -incremental [-assume "l1 l2 ..."]... [-model] [-stats] formula.cnf
//	zsat -method bdd [-bdd-order static|force|natural] [-bdd-bucket]
//	     [-er out.er] [-er-lrat out.lrat] [-model] [-stats] formula.cnf
//	zsat -certify [-cert-out bundle.json] [-cert-key hex] [-cert-timeout d]
//	     [-model] [-stats] formula.cnf
//
// -certify solves the formula while recording both a native resolution trace
// and a clausal DRAT proof in memory, then runs the fail-closed dual-checker
// certification pipeline (docs/CERTIFY.md) over the run's own artifacts. The
// signed verdict bundle is printed as JSON (or written to -cert-out). Exit is
// 20 only for CERTIFIED_UNSAT; an UNSAT answer whose certification fails
// exits 1.
//
// -drup additionally records a clausal DRUP proof (checkable by
// `zverify -format drat`), independent of the native trace: a run may record
// either, both, or neither. A ".gz" suffix gzips the proof.
//
// -method bdd switches to the BDD backend: UNSAT answers emit an
// extended-resolution proof (-er, checkable by `zproof check -format er` or
// `zcheckd method=bdd`; -er-lrat writes its LRAT bridge translation), SAT
// answers a model. The node budget (-bdd-max-nodes) turns order-hostile
// blowups into UNKNOWN.
//
// -incremental solves the formula on one persistent session, once per -assume
// flag (once with no assumptions when the flag is absent), reusing learned
// clauses across calls. Every answer is independently validated: UNSAT proofs
// replay through the depth-first checker (printed as "c validated"), SAT
// models are checked against every clause and assumption. UNSAT calls print
// the failed-assumption core on a "c core" line.
//
// Exit status follows the SAT-competition convention: 10 satisfiable,
// 20 unsatisfiable, 1 error or unknown (for -incremental: the last call's
// answer).
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"satcheck"
	"satcheck/internal/bdd"
	"satcheck/internal/cnf"
	"satcheck/internal/drat"
	"satcheck/internal/incremental"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
	"satcheck/internal/walksat"
)

// assumeList collects repeated -assume flags.
type assumeList []string

func (a *assumeList) String() string { return strings.Join(*a, "; ") }

func (a *assumeList) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	tracePath := flag.String("trace", "", "write the resolution trace to this file")
	drupPath := flag.String("drup", "", "write a clausal DRUP proof to this file (\".gz\" suffix gzips)")
	drupBinary := flag.Bool("drup-binary", false, "use the binary DRAT encoding for -drup")
	format := flag.String("format", "ascii", "trace encoding: ascii or binary")
	gzipTrace := flag.Bool("gzip", false, "gzip-compress the trace (stacks with either encoding)")
	showModel := flag.Bool("model", false, "print the satisfying assignment (v line)")
	showStats := flag.Bool("stats", false, "print solver statistics")
	maxConflicts := flag.Int64("max-conflicts", 0, "abort after this many conflicts (0 = none)")
	local := flag.Bool("local", false, "use WalkSAT local search instead of CDCL (incomplete: answers SAT or UNKNOWN, never UNSAT)")
	seed := flag.Int64("seed", 1, "random seed for -local")
	incr := flag.Bool("incremental", false, "solve on one validated persistent session, once per -assume flag")
	method := flag.String("method", "cdcl", "solving backend: cdcl or bdd")
	bddOrder := flag.String("bdd-order", "static", "BDD variable order: static, force, or natural")
	bddBucket := flag.Bool("bdd-bucket", false, "use bucket elimination instead of conjoin-everything")
	bddMaxNodes := flag.Int("bdd-max-nodes", 0, "BDD node budget (0 = default, negative = unlimited); exceeding it answers UNKNOWN")
	erPath := flag.String("er", "", "write the BDD backend's extended-resolution proof to this file (\".gz\" suffix gzips)")
	erLratPath := flag.String("er-lrat", "", "write the ER proof's LRAT bridge translation to this file (\".gz\" suffix gzips)")
	certifyRun := flag.Bool("certify", false, "solve, then dual-check the run's own proofs (trusted kernel + backward DRAT) and print a signed verdict bundle; nonzero exit unless CERTIFIED_UNSAT (or SAT with a verified model)")
	certOut := flag.String("cert-out", "", "write the certification bundle JSON to this file instead of stdout")
	certKey := flag.String("cert-key", "", "hex HMAC-SHA256 key for bundle signing (default: ephemeral ed25519)")
	certTimeout := flag.Duration("cert-timeout", 0, "per-pipeline certification budget (0 = none)")
	var assumes assumeList
	flag.Var(&assumes, "assume", "assumption literals for one incremental call, space-separated DIMACS (repeatable; implies -incremental)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: zsat [flags] formula.cnf")
		flag.PrintDefaults()
		return 1
	}

	f, err := cnf.ParseDimacsFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}

	switch *method {
	case "", "cdcl":
		if *erPath != "" || *erLratPath != "" {
			fmt.Fprintln(os.Stderr, "zsat: -er/-er-lrat require -method bdd")
			return 1
		}
	case "bdd":
		if *incr || len(assumes) > 0 || *local || *tracePath != "" || *drupPath != "" {
			fmt.Fprintln(os.Stderr, "zsat: -method bdd cannot be combined with -incremental, -local, -trace, or -drup")
			return 1
		}
		return runBDD(f, *bddOrder, *bddBucket, *bddMaxNodes, *erPath, *erLratPath, *showModel, *showStats)
	default:
		fmt.Fprintf(os.Stderr, "zsat: unknown method %q (want cdcl or bdd)\n", *method)
		return 1
	}

	if *certifyRun {
		if *incr || len(assumes) > 0 || *local || *tracePath != "" || *drupPath != "" {
			fmt.Fprintln(os.Stderr, "zsat: -certify cannot be combined with -incremental, -local, -trace, or -drup (it records its own artifacts)")
			return 1
		}
		return runCertify(flag.Arg(0), f, *maxConflicts, *certOut, *certKey, *certTimeout, *showModel, *showStats)
	}

	if *incr || len(assumes) > 0 {
		if *local || *tracePath != "" || *drupPath != "" {
			fmt.Fprintln(os.Stderr, "zsat: -incremental cannot be combined with -local, -trace, or -drup")
			return 1
		}
		return runIncremental(f, assumes, *maxConflicts, *showModel, *showStats)
	}

	if *local {
		found, m, stats := walksat.Solve(f, walksat.Options{Seed: *seed})
		if !found {
			fmt.Println("s UNKNOWN")
			return 1
		}
		if bad, ok := cnf.VerifyModel(f, m); !ok {
			fmt.Fprintf(os.Stderr, "zsat: internal: local-search model fails clause %d\n", bad)
			return 1
		}
		fmt.Println("s SATISFIABLE")
		if *showStats {
			fmt.Printf("c tries=%d flips=%d\n", stats.Tries, stats.Flips)
		}
		if *showModel {
			printModel(f, m)
		}
		return 10
	}

	s, err := solver.New(f, solver.Options{MaxConflicts: *maxConflicts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}

	var traceBytes func() int64
	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		defer out.Close()
		var encode func(w io.Writer) trace.Sink
		switch *format {
		case "ascii":
			encode = func(w io.Writer) trace.Sink { return trace.NewASCIIWriter(w) }
		case "binary":
			encode = func(w io.Writer) trace.Sink { return trace.NewBinaryWriter(w) }
		default:
			fmt.Fprintf(os.Stderr, "zsat: unknown trace format %q\n", *format)
			return 1
		}
		if *gzipTrace {
			gz := trace.NewGzipSink(out, encode)
			s.SetTrace(gz)
			traceBytes = gz.BytesWritten
		} else {
			sink := encode(out)
			s.SetTrace(sink)
			switch w := sink.(type) {
			case *trace.ASCIIWriter:
				traceBytes = w.BytesWritten
			case *trace.BinaryWriter:
				traceBytes = w.BytesWritten
			}
		}
	}

	var drupBytes func() int64
	var drupFinish func() error
	if *drupPath != "" {
		out, err := os.Create(*drupPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		defer out.Close()
		var w io.Writer = out
		var gz *gzip.Writer
		if strings.HasSuffix(*drupPath, ".gz") {
			gz = gzip.NewWriter(out)
			w = gz
		}
		var pw *drat.Writer
		if *drupBinary {
			pw = drat.NewBinaryWriter(w)
		} else {
			pw = drat.NewWriter(w)
		}
		s.SetProofSink(pw)
		drupBytes = pw.BytesWritten
		drupFinish = func() error {
			if gz != nil {
				return gz.Close()
			}
			return nil
		}
	}

	status, err := s.Solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	// The solver closed (flushed) the proof writer; finish the gzip stream.
	if drupFinish != nil {
		if err := drupFinish(); err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
	}
	fmt.Printf("s %s\n", status)
	if *showStats {
		st := s.Stats()
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d learned=%d deleted=%d restarts=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Learned, st.Deleted, st.Restarts)
		if traceBytes != nil {
			fmt.Printf("c trace-bytes=%d\n", traceBytes())
		}
		if drupBytes != nil {
			fmt.Printf("c drup-bytes=%d\n", drupBytes())
		}
	}
	switch status {
	case solver.StatusSat:
		if *showModel {
			printModel(f, s.Model())
		}
		return 10
	case solver.StatusUnsat:
		return 20
	default:
		return 1
	}
}

// runBDD decides f with the BDD backend. Proofs are always recorded (the
// backend exists to be checked); -er and -er-lrat choose what gets written.
func runBDD(f *cnf.Formula, orderName string, bucket bool, maxNodes int, erPath, erLratPath string, showModel, showStats bool) int {
	order, err := bdd.ParseOrder(orderName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	res, err := bdd.Solve(f, bdd.Options{
		Order:    order,
		Bucket:   bucket,
		MaxNodes: maxNodes,
		Proof:    true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	fmt.Printf("s %s\n", res.Status)
	if showStats {
		st := res.Stats
		fmt.Printf("c method=bdd order=%s bucket=%v nodes=%d extensions=%d apply-calls=%d cache-hits=%d quantified=%d proof-lines=%d\n",
			order, bucket, st.Nodes, st.Extensions, st.ApplyCalls, st.CacheHits, st.Quantified, st.ProofLines)
	}
	switch res.Status {
	case solver.StatusSat:
		if bad, ok := cnf.VerifyModel(f, res.Model); !ok {
			fmt.Fprintf(os.Stderr, "zsat: internal: BDD model fails clause %d\n", bad)
			return 1
		}
		if showModel {
			printModel(f, res.Model)
		}
		return 10
	case solver.StatusUnsat:
		if erPath != "" {
			if err := writeMaybeGzip(erPath, func(w io.Writer) error {
				return bdd.WriteER(w, res.Proof)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "zsat:", err)
				return 1
			}
		}
		if erLratPath != "" {
			if err := writeMaybeGzip(erLratPath, func(w io.Writer) error {
				return bdd.WriteLRAT(w, f, res.Proof)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "zsat:", err)
				return 1
			}
		}
		return 20
	default:
		return 1
	}
}

// runCertify solves f while recording both an in-memory native trace and an
// in-memory DRAT proof, then — on UNSAT — runs the fail-closed dual-checker
// pipeline over the run's own artifacts and prints the signed verdict bundle.
// The instance hash in the bundle covers the submitted file byte-for-byte
// (raw), not a re-serialization. Exit: 10 SAT (verified model),
// 20 CERTIFIED_UNSAT, 1 anything else — an uncertified UNSAT answer is an
// error by policy, never a bare exit 20.
func runCertify(path string, f *cnf.Formula, maxConflicts int64, certOut, certKey string, certTimeout time.Duration, showModel, showStats bool) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	var signer satcheck.CertifySigner
	if certKey != "" {
		key, err := hex.DecodeString(certKey)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat: -cert-key is not hex:", err)
			return 1
		}
		signer = satcheck.NewCertifyHMACSigner(key)
	}

	s, err := solver.New(f, solver.Options{MaxConflicts: maxConflicts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	var traceBuf, drupBuf bytes.Buffer
	s.SetTrace(trace.NewASCIIWriter(&traceBuf))
	s.SetProofSink(drat.NewWriter(&drupBuf))

	status, err := s.Solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	fmt.Printf("s %s\n", status)
	if showStats {
		st := s.Stats()
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d learned=%d deleted=%d restarts=%d\n",
			st.Decisions, st.Propagations, st.Conflicts, st.Learned, st.Deleted, st.Restarts)
		fmt.Printf("c trace-bytes=%d drup-bytes=%d\n", traceBuf.Len(), drupBuf.Len())
	}

	switch status {
	case solver.StatusSat:
		m := s.Model()
		if bad, ok := cnf.VerifyModel(f, m); !ok {
			fmt.Fprintf(os.Stderr, "zsat: internal: model fails clause %d\n", bad)
			return 1
		}
		fmt.Println("c certify: SAT answer carries a verified model; no bundle emitted")
		if showModel {
			printModel(f, m)
		}
		return 10
	case solver.StatusUnsat:
		c, err := satcheck.NewCertifier(satcheck.CertifyConfig{Signer: signer, Timeout: certTimeout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		bundle := c.Certify(context.Background(), satcheck.CertifyRequest{
			FormulaBytes: raw,
			TraceBytes:   traceBuf.Bytes(),
			DRATBytes:    drupBuf.Bytes(),
		})
		data, err := json.MarshalIndent(bundle, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		data = append(data, '\n')
		if certOut != "" {
			if err := os.WriteFile(certOut, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "zsat:", err)
				return 1
			}
		} else {
			os.Stdout.Write(data)
		}
		if !bundle.Certified() {
			fmt.Fprintf(os.Stderr, "zsat: CERTIFY_FAIL: %s\n", bundle.Reason)
			return 1
		}
		fmt.Printf("c certify: %s checkers=%d\n", bundle.Outcome, len(bundle.Checkers))
		return 20
	default:
		fmt.Fprintln(os.Stderr, "zsat: certify: solver returned", status, "- nothing to certify")
		return 1
	}
}

// writeMaybeGzip creates path and streams write into it, gzipping when the
// path carries a ".gz" suffix.
func writeMaybeGzip(path string, write func(io.Writer) error) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	var w io.Writer = out
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(out)
		w = gz
	}
	if err := write(w); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return out.Close()
}

// runIncremental solves f on one validated session, once per assumption set
// (once with no assumptions when none are given). Each call prints its own
// "s" answer and per-call "c call" stats line; a final "c total" line reports
// the cumulative counters. The exit status reflects the last call.
func runIncremental(f *cnf.Formula, assumes assumeList, maxConflicts int64, showModel, showStats bool) int {
	sess := incremental.NewSession(incremental.Options{
		Solver: solver.Options{MaxConflicts: maxConflicts},
	})
	if err := sess.AddFormula(f); err != nil {
		fmt.Fprintln(os.Stderr, "zsat:", err)
		return 1
	}
	sets := make([][]cnf.Lit, 0, len(assumes))
	if len(assumes) == 0 {
		sets = append(sets, nil)
	}
	for _, spec := range assumes {
		lits, err := parseAssumptions(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		sets = append(sets, lits)
	}

	code := 1
	for i, lits := range sets {
		if len(sets) > 1 || len(lits) > 0 {
			fmt.Printf("c call %d assuming:%s\n", i+1, dimacsString(lits))
		}
		st, err := sess.SolveAssuming(lits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zsat:", err)
			return 1
		}
		fmt.Printf("s %s\n", st)
		switch st {
		case solver.StatusSat:
			code = 10
			if showModel {
				printModel(f, sess.Model())
			}
		case solver.StatusUnsat:
			code = 20
			fmt.Printf("c core:%s 0\n", dimacsString(sess.Core()))
			if res := sess.CheckResult(); res != nil {
				fmt.Printf("c validated method=depth-first core-clauses=%d\n", len(res.CoreClauses))
			}
		default:
			code = 1
		}
		if showStats {
			printStatsLine(fmt.Sprintf("call %d", i+1), sess.LastStats())
		}
	}
	if showStats {
		printStatsLine("total", sess.Stats())
	}
	return code
}

// parseAssumptions reads space-separated DIMACS literals.
func parseAssumptions(spec string) ([]cnf.Lit, error) {
	fields := strings.Fields(spec)
	lits := make([]cnf.Lit, 0, len(fields))
	for _, fld := range fields {
		d, err := strconv.Atoi(fld)
		if err != nil || d == 0 {
			return nil, fmt.Errorf("zsat: bad assumption literal %q", fld)
		}
		lits = append(lits, cnf.LitFromDimacs(d))
	}
	return lits, nil
}

func dimacsString(lits []cnf.Lit) string {
	var b strings.Builder
	for _, l := range lits {
		fmt.Fprintf(&b, " %d", l.Dimacs())
	}
	return b.String()
}

func printStatsLine(label string, st solver.Stats) {
	fmt.Printf("c %s decisions=%d propagations=%d conflicts=%d learned=%d deleted=%d restarts=%d\n",
		label, st.Decisions, st.Propagations, st.Conflicts, st.Learned, st.Deleted, st.Restarts)
}

func printModel(f *cnf.Formula, m cnf.Model) {
	fmt.Print("v")
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		d := int(v)
		if m.Value(v) != cnf.True {
			d = -d
		}
		fmt.Printf(" %d", d)
	}
	fmt.Println(" 0")
}
