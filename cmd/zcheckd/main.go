// Command zcheckd is the proof-checking daemon: a long-lived HTTP/JSON
// service wrapping the independent resolution-based checker for pipelines
// that verify many proofs (EDA regression farms, solver CI). It owns a
// bounded job queue with backpressure, a worker pool, a content-addressed
// result cache, and Prometheus metrics; see docs/SERVICE.md for the API.
//
// Usage:
//
//	zcheckd [-addr :8347] [-workers N] [-queue N] [-cache N]
//	        [-max-body-mb N] [-timeout D] [-max-timeout D] [-temp-dir DIR]
//	        [-cert-key HEX]
//
// Cluster mode (see docs/CLUSTER.md) turns the process into a sharded
// service: a front router over a content-addressed store that
// consistent-hash-routes checks across N embedded worker shards and serves
// the async job API:
//
//	zcheckd -cluster [-shards N] [-store DIR] [-store-quota-mb N]
//	        [-tenant-rate R -tenant-burst B] [-cert-key HEX] [-addr :8346]
//
// A standalone zcheckd can also enlist as a worker shard of a running
// router:
//
//	zcheckd -join http://router:8346 [-shard-id NAME] [-advertise URL]
//
// The daemon drains gracefully on SIGTERM/SIGINT: in-flight and queued jobs
// finish (up to -drain-grace), new checks get 503; a joined shard deregisters
// from its router first.
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"satcheck/internal/certify"
	"satcheck/internal/cluster"
	"satcheck/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "listen address (default :8347 single, :8346 cluster; port 0 picks a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent checker workers (per shard in cluster mode)")
	queue := flag.Int("queue", server.DefaultQueueSize, "bounded job queue size (beyond it: HTTP 429)")
	cache := flag.Int("cache", server.DefaultCacheEntries, "result cache entries (0 disables)")
	maxBodyMB := flag.Int64("max-body-mb", 256, "largest accepted request body in MiB")
	timeout := flag.Duration("timeout", time.Minute, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested timeout_ms")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for queued jobs")
	tempDir := flag.String("temp-dir", "", "directory for trace spools and checker spill files (default system temp)")
	certKey := flag.String("cert-key", "", "hex HMAC-SHA256 key signing policy=dual bundles (default: ephemeral ed25519)")
	quiet := flag.Bool("quiet", false, "suppress per-job logs")

	// Cluster mode.
	clusterMode := flag.Bool("cluster", false, "run as a sharded cluster: router + -shards local workers")
	shards := flag.Int("shards", 3, "cluster: local worker shards to spawn")
	storeDir := flag.String("store", "", "cluster: content-addressed store directory (default <temp>/zcheckd-store)")
	storeQuotaMB := flag.Int64("store-quota-mb", 0, "cluster: store disk quota in MiB, LRU-evicted (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "cluster: per-tenant admitted requests/second (0 disables quotas)")
	tenantBurst := flag.Float64("tenant-burst", 10, "cluster: per-tenant burst size")

	// Worker-shard mode.
	join := flag.String("join", "", "register this zcheckd as a worker shard with a cluster router at URL")
	shardID := flag.String("shard-id", "", "shard name to register under (-join; default host:port derived)")
	advertise := flag.String("advertise", "", "URL the router should dial this shard at (-join; default derived from -addr)")
	flag.Parse()

	logLevel := slog.LevelInfo
	if *quiet {
		logLevel = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	if *clusterMode && *join != "" {
		fmt.Fprintln(os.Stderr, "zcheckd: -cluster and -join are mutually exclusive")
		return 1
	}

	var certSigner certify.Signer
	if *certKey != "" {
		key, err := hex.DecodeString(*certKey)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zcheckd: -cert-key is not hex:", err)
			return 1
		}
		certSigner = certify.NewHMACSigner(key)
	}

	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1 // Config: 0 means default, negative disables
	}
	shardCfg := server.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheEntries:   cacheEntries,
		MaxBodyBytes:   *maxBodyMB << 20,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		TempDir:        *tempDir,
		CertifySigner:  certSigner,
		Logger:         logger,
	}

	if *clusterMode {
		return runCluster(clusterOpts{
			addr:        orDefault(*addr, ":8346"),
			shards:      *shards,
			storeDir:    orDefault(*storeDir, filepath.Join(os.TempDir(), "zcheckd-store")),
			storeQuota:  *storeQuotaMB << 20,
			tenantRate:  *tenantRate,
			tenantBurst: *tenantBurst,
			maxBody:     *maxBodyMB << 20,
			drainGrace:  *drainGrace,
			shardCfg:    shardCfg,
			certSigner:  certSigner,
			logger:      logger,
		})
	}
	shardCfg.Addr = orDefault(*addr, ":8347")
	return runSingle(shardCfg, *drainGrace, *join, *shardID, *advertise, logger)
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// runSingle is the classic one-process daemon; with -join it additionally
// registers itself as a worker shard of a cluster router and deregisters
// before draining.
func runSingle(cfg server.Config, drainGrace time.Duration, join, shardID, advertise string, logger *slog.Logger) int {
	s := server.New(cfg)
	bound, err := s.Listen()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zcheckd:", err)
		return 1
	}
	// The parseable "listening" line goes to stdout so scripts (and the CLI
	// tests) can discover a :0-assigned port.
	fmt.Printf("zcheckd: listening on http://%s\n", bound)
	logger.Info("zcheckd started", "addr", bound.String(), "workers", cfg.Workers, "queue", cfg.QueueSize)

	if join != "" {
		if shardID == "" {
			shardID = "shard-" + bound.String()
		}
		if advertise == "" {
			advertise = "http://" + reachableAddr(bound)
		}
		if err := postJoin(join+"/cluster/join", cluster.JoinRequest{ID: shardID, URL: advertise}); err != nil {
			fmt.Fprintln(os.Stderr, "zcheckd: joining cluster:", err)
			return 1
		}
		logger.Info("joined cluster", "router", join, "shard", shardID, "advertise", advertise)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	select {
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "grace", drainGrace)
		if join != "" {
			// Leave the ring first so the router stops routing here; errors
			// are non-fatal — the router's prober notices the drain anyway.
			if err := postJoin(join+"/cluster/leave", cluster.JoinRequest{ID: shardID}); err != nil {
				logger.Warn("cluster leave failed", "err", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			return 1
		}
		logger.Info("drained cleanly")
		return 0
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "zcheckd:", err)
			return 1
		}
		return 0
	}
}

type clusterOpts struct {
	addr        string
	shards      int
	storeDir    string
	storeQuota  int64
	tenantRate  float64
	tenantBurst float64
	maxBody     int64
	drainGrace  time.Duration
	shardCfg    server.Config
	certSigner  certify.Signer
	logger      *slog.Logger
}

func runCluster(o clusterOpts) int {
	rt, err := cluster.New(cluster.Config{
		Addr:            o.addr,
		StoreDir:        o.storeDir,
		StoreQuotaBytes: o.storeQuota,
		Shards:          o.shards,
		ShardConfig:     o.shardCfg,
		MaxBodyBytes:    o.maxBody,
		TenantRate:      o.tenantRate,
		TenantBurst:     o.tenantBurst,
		CertifySigner:   o.certSigner,
		Logger:          o.logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "zcheckd:", err)
		return 1
	}
	bound, err := rt.Listen()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zcheckd:", err)
		return 1
	}
	fmt.Printf("zcheckd: cluster router listening on http://%s (%d local shards, store %s)\n",
		bound, o.shards, o.storeDir)
	o.logger.Info("cluster started", "addr", bound.String(), "shards", o.shards,
		"store", o.storeDir, "quota_bytes", o.storeQuota)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	serveErr := make(chan error, 1)
	go func() { serveErr <- rt.Serve() }()

	select {
	case sig := <-sigs:
		o.logger.Info("cluster draining", "signal", sig.String(), "grace", o.drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			o.logger.Error("cluster shutdown incomplete", "err", err)
			return 1
		}
		o.logger.Info("cluster drained cleanly")
		return 0
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "zcheckd:", err)
			return 1
		}
		return 0
	}
}

// reachableAddr rewrites a wildcard bind (":8347", "[::]:8347") into a
// loopback address the router can actually dial on the same host.
func reachableAddr(bound net.Addr) string {
	host, port, err := net.SplitHostPort(bound.String())
	if err != nil {
		return bound.String()
	}
	switch host {
	case "", "::", "0.0.0.0":
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func postJoin(url string, req cluster.JoinRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return fmt.Errorf("router answered %d: %s", resp.StatusCode, er.Error)
	}
	return nil
}
