// Command zcheckd is the proof-checking daemon: a long-lived HTTP/JSON
// service wrapping the independent resolution-based checker for pipelines
// that verify many proofs (EDA regression farms, solver CI). It owns a
// bounded job queue with backpressure, a worker pool, a content-addressed
// result cache, and Prometheus metrics; see docs/SERVICE.md for the API.
//
// Usage:
//
//	zcheckd [-addr :8347] [-workers N] [-queue N] [-cache N]
//	        [-max-body-mb N] [-timeout D] [-max-timeout D] [-temp-dir DIR]
//
// The daemon drains gracefully on SIGTERM/SIGINT: in-flight and queued jobs
// finish (up to -drain-grace), new checks get 503.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"satcheck/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8347", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent checker workers")
	queue := flag.Int("queue", server.DefaultQueueSize, "bounded job queue size (beyond it: HTTP 429)")
	cache := flag.Int("cache", server.DefaultCacheEntries, "result cache entries (0 disables)")
	maxBodyMB := flag.Int64("max-body-mb", 256, "largest accepted request body in MiB")
	timeout := flag.Duration("timeout", time.Minute, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested timeout_ms")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for queued jobs")
	tempDir := flag.String("temp-dir", "", "directory for trace spools and checker spill files (default system temp)")
	quiet := flag.Bool("quiet", false, "suppress per-job logs")
	flag.Parse()

	logLevel := slog.LevelInfo
	if *quiet {
		logLevel = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1 // Config: 0 means default, negative disables
	}
	s := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueSize:      *queue,
		CacheEntries:   cacheEntries,
		MaxBodyBytes:   *maxBodyMB << 20,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		TempDir:        *tempDir,
		Logger:         logger,
	})

	bound, err := s.Listen()
	if err != nil {
		fmt.Fprintln(os.Stderr, "zcheckd:", err)
		return 1
	}
	// The parseable "listening" line goes to stdout so scripts (and the CLI
	// tests) can discover a :0-assigned port.
	fmt.Printf("zcheckd: listening on http://%s\n", bound)
	logger.Info("zcheckd started", "addr", bound.String(), "workers", *workers, "queue", *queue, "cache", cacheEntries)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()

	select {
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "grace", *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			return 1
		}
		logger.Info("drained cleanly")
		return 0
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "zcheckd:", err)
			return 1
		}
		return 0
	}
}
