// Command zcore extracts an unsatisfiable core from a DIMACS CNF formula by
// solving it, validating the resolution proof with the depth-first checker,
// and (optionally) iterating solve→check→extract to a fixed point as in the
// paper's Table 3.
//
// Usage:
//
//	zcore [-iters 30] [-incremental] [-mus] [-out core.cnf] formula.cnf
//
// -incremental runs the iteration on one persistent solver session (learned
// clauses carry over between rounds) instead of re-solving each core from
// scratch. -mus continues past the fixed point to a minimal unsatisfiable
// subformula using the session-based deletion extractor; every intermediate
// answer is independently validated.
//
// Exit status: 0 on success, 3 when the formula is satisfiable, 1 on error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"satcheck"
	"satcheck/internal/cnf"
	"satcheck/internal/core"
	"satcheck/internal/incremental"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("iters", 30, "maximum solve→check→extract iterations (paper: 30)")
	out := flag.String("out", "", "write the final core as DIMACS to this file")
	verbose := flag.Bool("v", false, "print per-iteration sizes")
	mus := flag.Bool("mus", false, "continue past the fixed point to a minimal unsatisfiable subformula (session-based deletion; one solver call per clause)")
	incr := flag.Bool("incremental", false, "iterate on one persistent solver session instead of re-solving from scratch")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: zcore [flags] formula.cnf")
		flag.PrintDefaults()
		return 1
	}

	f, err := satcheck.ParseDimacsFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "zcore:", err)
		return 1
	}

	var res *satcheck.CoreIteration
	if *incr {
		res, err = core.IterateIncremental(f, *iters, incremental.Options{})
	} else {
		res, err = satcheck.IterateCore(f, *iters, satcheck.SolverOptions{})
	}
	if err != nil {
		if errors.Is(err, core.ErrSatisfiable) {
			fmt.Println("formula is SATISFIABLE; no unsatisfiable core exists")
			return 3
		}
		fmt.Fprintln(os.Stderr, "zcore:", err)
		return 1
	}

	fmt.Printf("original: %d clauses, %d vars used\n", f.NumClauses(), f.UsedVars())
	if first, ok := res.First(); ok {
		fmt.Printf("first iteration: %d clauses, %d vars\n", first.NumClauses, first.NumVars)
	}
	last := res.Stats[len(res.Stats)-1]
	fp := ""
	if res.FixedPoint {
		fp = " (fixed point)"
	}
	fmt.Printf("after %d iterations%s: %d clauses, %d vars\n",
		res.Iterations, fp, last.NumClauses, last.NumVars)
	if *verbose {
		for _, st := range res.Stats {
			fmt.Printf("  iter %2d: clauses=%d vars=%d\n", st.Iteration, st.NumClauses, st.NumVars)
		}
	}
	final := res.Core
	if *mus {
		ext, stat, err := core.MinimalIncremental(f, incremental.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "zcore:", err)
			return 1
		}
		fmt.Printf("minimal unsatisfiable subformula: %d clauses, %d vars (%d removal candidates tested)\n",
			ext.NumClauses, ext.NumVars, stat.Tested)
		final = ext.Core
	}
	if *out != "" {
		if err := cnf.WriteDimacsFile(*out, final); err != nil {
			fmt.Fprintln(os.Stderr, "zcore:", err)
			return 1
		}
		fmt.Printf("core written to %s\n", *out)
	}
	return 0
}
