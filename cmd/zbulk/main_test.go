package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"satcheck"
	"satcheck/internal/cnf"
	"satcheck/internal/gen"
	"satcheck/internal/trace"
)

// writeInstance solves one generated UNSAT instance and writes NAME.cnf plus
// the requested proof siblings into dir.
func writeInstance(t *testing.T, dir, name string, ins gen.Instance, withTrace, withDRAT bool) {
	t.Helper()
	var fb bytes.Buffer
	if err := cnf.WriteDimacs(&fb, ins.F); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".cnf"), fb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if withTrace {
		run, err := satcheck.SolveWithProof(ins.F, satcheck.SolverOptions{})
		if err != nil || run.Status != satcheck.StatusUnsat {
			t.Fatalf("solve: %v status %v", err, run.Status)
		}
		var tb bytes.Buffer
		if err := run.Trace.Replay(trace.NewASCIIWriter(&tb)); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".trace"), tb.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if withDRAT {
		var pb bytes.Buffer
		st, _, err := satcheck.SolveWithDRUP(ins.F, satcheck.SolverOptions{}, satcheck.NewDRATWriter(&pb))
		if err != nil || st != satcheck.StatusUnsat {
			t.Fatalf("solve drup: %v status %v", err, st)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".drat"), pb.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBulkCertifiesDirectory runs the batch runner over a mixed directory:
// a trace+DRAT pair, a DRAT-only pair (exercising the derived-LRAT bridge),
// and a proofless instance that must be skipped, not failed.
func TestBulkCertifiesDirectory(t *testing.T) {
	dir := t.TempDir()
	writeInstance(t, dir, "full", gen.Pigeonhole(4), true, true)
	writeInstance(t, dir, "clausal", gen.Pigeonhole(3), false, true)
	writeInstance(t, dir, "noproof", gen.Pigeonhole(3), false, false)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir, "-key", "00112233"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep batchReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, stdout.String())
	}
	if rep.Total != 3 || rep.Certified != 2 || rep.Failed != 0 || rep.Skipped != 1 {
		t.Fatalf("summary %+v", rep)
	}
	byName := map[string]instanceReport{}
	for _, ir := range rep.Instances {
		byName[ir.Name] = ir
	}
	if ir := byName["full"]; ir.Outcome != satcheck.CertifiedUnsat || ir.KernelInput != "full.trace" {
		t.Fatalf("full: %+v", ir)
	}
	if ir := byName["clausal"]; ir.Outcome != satcheck.CertifiedUnsat ||
		!strings.HasPrefix(ir.KernelInput, "derived-lrat(") {
		t.Fatalf("clausal: %+v", ir)
	}
	if ir := byName["noproof"]; ir.Outcome != "SKIPPED" || ir.Bundle != nil {
		t.Fatalf("noproof: %+v", ir)
	}
	// Every certified bundle must verify under the shared HMAC key.
	key := []byte{0x00, 0x11, 0x22, 0x33}
	for _, name := range []string{"full", "clausal"} {
		b := byName[name].Bundle
		if b == nil {
			t.Fatalf("%s: no bundle in report", name)
		}
		if err := b.Verify(key); err != nil {
			t.Fatalf("%s: bundle does not verify: %v", name, err)
		}
	}
}

// TestBulkFailClosed corrupts one clausal proof: the batch must exit 2 and
// the report row must be a CERTIFY_FAIL, while the intact pair still
// certifies — one bad instance does not poison the batch.
func TestBulkFailClosed(t *testing.T) {
	dir := t.TempDir()
	writeInstance(t, dir, "good", gen.Pigeonhole(4), true, true)
	writeInstance(t, dir, "bad", gen.Pigeonhole(4), true, true)
	path := filepath.Join(dir, "bad.drat")
	proof, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	proof = bytes.Replace(proof, []byte("\n"), []byte(" 99999\n"), 1)
	if err := os.WriteFile(path, proof, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", dir}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, stderr.String())
	}
	var rep batchReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Certified != 1 || rep.Failed != 1 {
		t.Fatalf("summary %+v", rep)
	}
	for _, ir := range rep.Instances {
		switch ir.Name {
		case "good":
			if ir.Outcome != satcheck.CertifiedUnsat {
				t.Fatalf("good: %+v", ir)
			}
		case "bad":
			if ir.Outcome != satcheck.CertifyFail || ir.Reason == "" {
				t.Fatalf("bad: %+v", ir)
			}
		}
	}
}

// TestBulkUsageErrors pins the exit-1 surface.
func TestBulkUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", t.TempDir()}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty dir: exit %d, want 1", code)
	}
	if code := run([]string{"-key", "zz"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad key: exit %d, want 1", code)
	}
	if code := run([]string{"positional"}, &stdout, &stderr); code != 1 {
		t.Fatalf("positional arg: exit %d, want 1", code)
	}
}
