// Command zbulk certifies a directory of DIMACS+proof pairs — the
// SAT-competition layout of one formula.cnf with sibling proof files — under
// the fail-closed dual-checker policy (docs/CERTIFY.md), and emits one JSON
// report covering the whole batch.
//
// Usage:
//
//	zbulk [-dir DIR] [-out report.json] [-key HEXKEY] [-timeout D]
//	      [-mem-limit-mb N] [-v]
//
// For every NAME.cnf under -dir, the proof siblings decide the pipeline
// inputs:
//
//	NAME.trace           native resolution trace   → kernel pipeline
//	NAME.lrat            LRAT proof                → kernel pipeline
//	NAME.drat, NAME.drup clausal proof             → rup pipeline
//	(each also accepted with a .gz suffix; encodings are sniffed)
//
// A pair with only a clausal proof — the common competition layout — is
// still dually certified: the DRAT proof is forward-checked and bridged to
// a verified LRAT derivation (kernelcheck.DRATToLRAT) which feeds the
// trusted kernel, while the original DRAT bytes feed the independent
// watched-literal backward checker. The bridge is recorded in the report as
// kernel_input "derived-lrat(...)" so an auditor can see the provenance.
//
// Instances with no proof sibling at all are reported as skipped — a batch
// directory may legitimately mix SAT instances (no proof) with UNSAT ones.
// Everything else is certified fail-closed: any disagreement, rejection, or
// error is a signed CERTIFY_FAIL bundle in the report, never a crash.
//
// Exit status: 0 when every certification attempt produced CERTIFIED_UNSAT,
// 2 when any attempt failed certification, 1 on usage or I/O errors.
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"satcheck"
)

// instanceReport is one DIMACS+proof pair's row in the batch report.
type instanceReport struct {
	Name        string                  `json:"name"`
	Formula     string                  `json:"formula"`
	KernelInput string                  `json:"kernel_input,omitempty"`
	DRAT        string                  `json:"drat,omitempty"`
	Outcome     string                  `json:"outcome"` // CERTIFIED_UNSAT | CERTIFY_FAIL | SKIPPED
	Reason      string                  `json:"reason,omitempty"`
	ElapsedMS   int64                   `json:"elapsed_ms"`
	Bundle      *satcheck.CertifyBundle `json:"bundle,omitempty"`
}

// batchReport is the full zbulk output.
type batchReport struct {
	Dir       string           `json:"dir"`
	Total     int              `json:"total"`
	Certified int              `json:"certified"`
	Failed    int              `json:"failed"`
	Skipped   int              `json:"skipped"`
	Instances []instanceReport `json:"instances"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zbulk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding NAME.cnf files with proof siblings")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	keyHex := fs.String("key", "", "hex HMAC-SHA256 key for bundle signing (default: ephemeral ed25519)")
	timeout := fs.Duration("timeout", 0, "per-instance certification timeout (0 = none)")
	memLimitMB := fs.Int64("mem-limit-mb", 0, "per-pipeline checker memory bound in MB (0 = unlimited)")
	verbose := fs.Bool("v", false, "print one progress line per instance to stderr")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: zbulk [flags]  (instances come from -dir, not arguments)")
		fs.PrintDefaults()
		return 1
	}

	var signer satcheck.CertifySigner
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil || len(key) == 0 {
			fmt.Fprintln(stderr, "zbulk: -key must be non-empty hex")
			return 1
		}
		signer = satcheck.NewCertifyHMACSigner(key)
	}
	certifier, err := satcheck.NewCertifier(satcheck.CertifyConfig{
		Signer:        signer,
		Timeout:       *timeout,
		MemLimitWords: *memLimitMB << 20 / 4,
	})
	if err != nil {
		fmt.Fprintln(stderr, "zbulk:", err)
		return 1
	}

	names, err := filepath.Glob(filepath.Join(*dir, "*.cnf"))
	if err != nil {
		fmt.Fprintln(stderr, "zbulk:", err)
		return 1
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(stderr, "zbulk: no *.cnf files under %s\n", *dir)
		return 1
	}

	report := batchReport{Dir: *dir}
	for _, cnfPath := range names {
		ir := certifyOne(certifier, cnfPath)
		report.Total++
		switch ir.Outcome {
		case satcheck.CertifiedUnsat:
			report.Certified++
		case "SKIPPED":
			report.Skipped++
		default:
			report.Failed++
		}
		if *verbose {
			fmt.Fprintf(stderr, "zbulk: %-30s %s %s\n", ir.Name, ir.Outcome, ir.Reason)
		}
		report.Instances = append(report.Instances, ir)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "zbulk:", err)
		return 1
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "zbulk:", err)
			return 1
		}
	} else {
		stdout.Write(data)
	}
	fmt.Fprintf(stderr, "zbulk: %d instances: %d certified, %d failed, %d skipped\n",
		report.Total, report.Certified, report.Failed, report.Skipped)
	if report.Failed > 0 {
		return 2
	}
	return 0
}

// sibling returns the first existing NAME.ext (or NAME.ext.gz) next to the
// formula, with the name it found.
func sibling(base string, exts ...string) (string, bool) {
	for _, ext := range exts {
		for _, candidate := range []string{base + ext, base + ext + ".gz"} {
			if st, err := os.Stat(candidate); err == nil && !st.IsDir() {
				return candidate, true
			}
		}
	}
	return "", false
}

// certifyOne assembles the pipeline inputs for one formula and runs the
// dual certifier. Every problem after "proofs exist" is a CERTIFY_FAIL
// outcome, not an error — fail-closed applies to the batch runner too.
func certifyOne(c *satcheck.Certifier, cnfPath string) instanceReport {
	base := strings.TrimSuffix(cnfPath, ".cnf")
	ir := instanceReport{Name: filepath.Base(base), Formula: filepath.Base(cnfPath)}
	start := time.Now()
	defer func() { ir.ElapsedMS = time.Since(start).Milliseconds() }()

	formula, err := os.ReadFile(cnfPath)
	if err != nil {
		ir.Outcome = satcheck.CertifyFail
		ir.Reason = err.Error()
		return ir
	}
	req := satcheck.CertifyRequest{FormulaBytes: formula}

	tracePath, haveTrace := sibling(base, ".trace")
	lratPath, haveLRAT := sibling(base, ".lrat")
	dratPath, haveDRAT := sibling(base, ".drat", ".drup")

	if !haveTrace && !haveLRAT && !haveDRAT {
		ir.Outcome = "SKIPPED"
		ir.Reason = "no proof sibling (.trace/.lrat/.drat/.drup)"
		return ir
	}

	if haveDRAT {
		ir.DRAT = filepath.Base(dratPath)
		if req.DRATBytes, err = os.ReadFile(dratPath); err != nil {
			ir.Outcome = satcheck.CertifyFail
			ir.Reason = err.Error()
			return ir
		}
	}
	switch {
	case haveTrace:
		ir.KernelInput = filepath.Base(tracePath)
		req.TraceBytes, err = os.ReadFile(tracePath)
	case haveLRAT:
		ir.KernelInput = filepath.Base(lratPath)
		req.LRATBytes, err = os.ReadFile(lratPath)
	case haveDRAT:
		// Competition layout: clausal proof only. Bridge it to a verified
		// LRAT derivation so the trusted kernel has something to check; the
		// rup pipeline still consumes the original DRAT bytes.
		ir.KernelInput = "derived-lrat(" + filepath.Base(dratPath) + ")"
		req.LRATBytes, err = deriveLRAT(formula, req.DRATBytes)
	}
	if err != nil {
		ir.Outcome = satcheck.CertifyFail
		ir.Reason = "kernel input: " + err.Error()
		return ir
	}

	bundle := c.Certify(context.Background(), req)
	ir.Outcome = bundle.Outcome
	ir.Reason = bundle.Reason
	ir.Bundle = bundle
	return ir
}

// deriveLRAT forward-checks a DRAT proof and emits the accepted derivation
// as kernel-checkable LRAT.
func deriveLRAT(formula, dratBytes []byte) ([]byte, error) {
	f, err := satcheck.ParseDimacs(bytes.NewReader(formula))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := satcheck.DRATToLRAT(f, satcheck.ProofBytesSource(dratBytes), &buf, satcheck.CheckOptions{}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
