// Command benchjson converts `go test -bench` output into JSON so benchmark
// records can be committed and diffed (the repository ships Table 1/2 runs as
// BENCH_table2.json; see `make bench`). It reads the benchmark log on stdin,
// echoes it unchanged to stdout, and writes the parsed records to -o.
//
// Usage:
//
//	go test -bench 'BenchmarkTable2' -benchmem . | benchjson -o BENCH_table2.json
//
// Each benchmark line becomes one record; repeated lines from -count=N stay
// separate so consumers can aggregate however they like. Benchmark metric
// pairs ("value unit", e.g. "5066 allocs/op" or "70.46 built%") are kept
// generically as a unit→value map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// record is one parsed benchmark line.
type record struct {
	// Name is the full benchmark name including sub-benchmark and the
	// trailing -N GOMAXPROCS suffix, e.g. "BenchmarkTable2Hybrid/php-6-4".
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default stdout only)")
	flag.Parse()
	doc, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes the benchmark log from r, echoing every line to echo, and
// returns the parsed document.
func parse(r io.Reader, echo io.Writer) (*document, error) {
	doc := &document{Benchmarks: []record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, rec)
			}
		}
	}
	return doc, sc.Err()
}

// parseLine parses "BenchmarkName-N   iters   value unit   value unit ...".
func parseLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
