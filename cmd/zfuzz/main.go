// Command zfuzz is the adversarial conformance fuzzer: it generates CNF
// instances, cross-checks solver verdicts against independent references,
// fans every UNSAT proof through the full checker×format matrix, and asserts
// the fault-injection rejection contracts. Disagreements are shrunk to
// minimal reproductions in testdata/corpus/regressions/.
//
// Usage:
//
//	zfuzz [-rounds N] [-seed S] [-duration D] [-j W] [-json FILE]
//	zfuzz -inject drat-negate-literal        # synthetic bug → minimized repro
//	zfuzz -repro testdata/corpus/regressions/r0001-....cnf [-inject M]
//
// Exit status: 0 clean, 1 escapes/disagreements found, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"satcheck/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("zfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rounds       = fs.Int("rounds", 100, "number of fuzzing rounds")
		seed         = fs.Int64("seed", 1, "base RNG seed (whole run is deterministic per seed)")
		duration     = fs.Duration("duration", 0, "run for this long instead of -rounds (soak mode)")
		workers      = fs.Int("j", 1, "concurrent rounds")
		inject       = fs.String("inject", "", "inject this named mutation as a synthetic solver bug and minimize the repro")
		repro        = fs.String("repro", "", "replay one saved regression CNF instead of generating instances")
		out          = fs.String("out", "testdata/corpus/regressions", "directory for minimized repros (\"-\" disables writing)")
		jsonOut      = fs.String("json", "", "write the machine-readable summary JSON to this file (\"-\" = stdout)")
		maxConflicts = fs.Int64("max-conflicts", 200000, "per-solve conflict budget (over budget = round skipped)")
		budget       = fs.Int("shrink-budget", 20000, "solver runs allowed per minimization")
		verbose      = fs.Bool("v", false, "log per-round progress")
		list         = fs.Bool("list", false, "list the injectable mutation names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "zfuzz: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *list {
		for _, n := range harness.InjectableMutations() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	cfg := harness.Config{
		Rounds:         *rounds,
		Seed:           *seed,
		Duration:       *duration,
		Workers:        *workers,
		Inject:         *inject,
		ReproFile:      *repro,
		RegressionDir:  *out,
		MaxConflicts:   *maxConflicts,
		MinimizeBudget: *budget,
	}
	if *verbose {
		cfg.Log = stderr
	}
	start := time.Now()
	sum, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "zfuzz: %v\n", err)
		return 2
	}
	if *jsonOut != "" {
		b, merr := json.MarshalIndent(sum, "", "  ")
		if merr != nil {
			fmt.Fprintf(stderr, "zfuzz: marshal summary: %v\n", merr)
			return 2
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			stdout.Write(b)
		} else if werr := os.WriteFile(*jsonOut, b, 0o644); werr != nil {
			fmt.Fprintf(stderr, "zfuzz: %v\n", werr)
			return 2
		}
	}
	printSummary(stdout, sum, time.Since(start))
	if !sum.Clean() {
		return 1
	}
	return 0
}

func printSummary(w io.Writer, s *harness.Summary, elapsed time.Duration) {
	fmt.Fprintf(w, "zfuzz: %d rounds, %d instances (%d sat / %d unsat / %d unknown) in %s\n",
		s.Rounds, s.Instances, s.Sat, s.Unsat, s.Unknown, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  oracles: %d dp-compared, %d brute-compared, %d bdd-compared, %d matrix cells exercised\n",
		s.DPCompared, s.BruteCompared, s.BDDCompared, len(s.Cells))
	fmt.Fprintf(w, "  mutants: native %s, drat %s, lrat %s, er %s\n",
		statLine(s.Native), statLine(s.Clausal), statLine(s.LRAT), statLine(s.ER))
	for _, r := range s.Repros {
		fmt.Fprintf(w, "  repro: %s (%d→%d clauses)\n    %s\n",
			r.Path, r.OriginalClauses, r.MinimizedClauses, r.Command)
	}
	if s.Clean() {
		fmt.Fprintf(w, "  result: CLEAN — no escapes, no disagreements\n")
		return
	}
	fmt.Fprintf(w, "  result: %d escape(s), %d disagreement(s), %d failure(s)\n",
		s.Escapes, s.Disagreements, len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  FAIL [%s] round %d %s: %s\n", f.Kind, f.Round, f.Instance, f.Detail)
		if f.Repro != nil {
			fmt.Fprintf(w, "    repro: %s\n", f.Repro.Command)
		}
	}
}

func statLine(m harness.MutationStats) string {
	return fmt.Sprintf("%d tried (%d rejected, %d benign, %d skipped)",
		m.Tried, m.Rejected, m.Benign, m.Skipped)
}
