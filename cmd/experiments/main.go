// Command experiments regenerates every table of the paper's evaluation
// (plus the ablations listed in DESIGN.md §4) on the substitute benchmark
// suite. Output is row-for-row in the shape of the paper's Tables 1-3 so
// EXPERIMENTS.md can record paper-vs-measured comparisons directly.
//
// Usage:
//
//	experiments -table 1            # trace-generation overhead
//	experiments -table 2            # depth-first vs breadth-first checking
//	experiments -table 3            # unsatisfiable-core iteration
//	experiments -table encoding     # ASCII vs binary trace (paper §4 remark)
//	experiments -table hybrid       # hybrid checker (paper's future work)
//	experiments -table parallel     # DAG-scheduled parallel checker vs hybrid
//	experiments -table ablation     # solver-feature ablations
//	experiments -table all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"satcheck/internal/checker"
	"satcheck/internal/core"
	"satcheck/internal/dp"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, encoding, hybrid, parallel, ablation, all")
	suite := flag.String("suite", "full", "benchmark suite: quick or full")
	memLimitMB := flag.Int64("df-mem-limit-mb", 0, "memory-model budget for the depth-first checker in table 2 (0 = unlimited; the paper used 800MB)")
	flag.Parse()

	var instances []gen.Instance
	switch *suite {
	case "quick":
		instances = gen.SuiteQuick()
	case "full":
		instances = gen.Suite()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown suite %q\n", *suite)
		os.Exit(1)
	}

	run := func(name string, fn func([]gen.Instance) error) {
		if *table != "all" && *table != name {
			return
		}
		if err := fn(instances); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run("1", table1)
	run("2", func(ins []gen.Instance) error { return table2(ins, *memLimitMB) })
	run("3", table3)
	run("encoding", tableEncoding)
	run("hybrid", tableHybrid)
	run("parallel", tableParallel)
	run("ablation", tableAblation)
	run("dp", tableDP)
}

// solveTraced solves the instance streaming an ASCII trace to a temp file,
// returning the solver, trace path and byte size. The caller removes the
// file.
func solveTraced(ins gen.Instance) (*solver.Solver, string, int64, time.Duration, error) {
	s, err := solver.New(ins.F, solver.Options{})
	if err != nil {
		return nil, "", 0, 0, err
	}
	f, err := os.CreateTemp("", "satcheck-exp-*.trace")
	if err != nil {
		return nil, "", 0, 0, err
	}
	w := trace.NewASCIIWriter(f)
	s.SetTrace(w)
	start := time.Now()
	status, err := s.Solve()
	elapsed := time.Since(start)
	f.Close()
	if err == nil && status != solver.StatusUnsat {
		err = fmt.Errorf("instance %s: expected UNSAT, got %v", ins.Name, status)
	}
	if err != nil {
		os.Remove(f.Name())
		return nil, "", 0, 0, err
	}
	return s, f.Name(), w.BytesWritten(), elapsed, nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(stringsRepeat("=", len(title)))
}

func stringsRepeat(s string, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += s
	}
	return out
}

// table1 reproduces Table 1: solver statistics with trace generation turned
// off and on, and the trace-generation overhead.
func table1(instances []gen.Instance) error {
	header("Table 1: zsat with trace generation turned on and off")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tVars\tClauses\tLearned\tTraceOff(s)\tTraceOn(s)\tOverhead\t")
	for _, ins := range instances {
		// Trace off.
		sOff, err := solver.New(ins.F, solver.Options{})
		if err != nil {
			return err
		}
		start := time.Now()
		status, err := sOff.Solve()
		offTime := time.Since(start)
		if err != nil {
			return err
		}
		if status != solver.StatusUnsat {
			return fmt.Errorf("instance %s: expected UNSAT, got %v", ins.Name, status)
		}
		// Trace on (streamed to disk like zchaff's instrumentation).
		sOn, path, _, onTime, err := solveTraced(ins)
		if err != nil {
			return err
		}
		os.Remove(path)
		overhead := float64(onTime-offTime) / float64(offTime) * 100
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.3f\t%+.1f%%\t\n",
			ins.Name, ins.F.NumVars, ins.F.NumClauses(), sOn.Stats().Learned,
			offTime.Seconds(), onTime.Seconds(), overhead)
	}
	return tw.Flush()
}

// table2 reproduces Table 2: trace size and the depth-first vs breadth-first
// checker comparison (clauses built, Built%, runtime, peak memory). A
// df-mem-limit reproduces the paper's "*" memory-out rows.
func table2(instances []gen.Instance, memLimitMB int64) error {
	header("Table 2: statistics for the two checking strategies")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tTrace(KB)\tDF built\tBuilt%\tDF time(s)\tDF mem(KB)\tBF time(s)\tBF mem(KB)\t")
	for _, ins := range instances {
		_, path, traceBytes, _, err := solveTraced(ins)
		if err != nil {
			return err
		}
		src := trace.FileSource(path)

		dfCols := "*\t*\t*\t*"
		dfOpts := checker.Options{MemLimitWords: memLimitMB * (1 << 20) / 4}
		start := time.Now()
		dfRes, dfErr := checker.DepthFirst(ins.F, src, dfOpts)
		dfTime := time.Since(start)
		if dfErr == nil {
			dfCols = fmt.Sprintf("%d\t%.0f%%\t%.3f\t%d",
				dfRes.ClausesBuilt, 100*dfRes.BuiltFraction(), dfTime.Seconds(), dfRes.PeakMemWords*4/1024)
		} else if ce := new(checker.CheckError); !errors.As(dfErr, &ce) || ce.Kind != checker.FailMemoryLimit {
			os.Remove(path)
			return fmt.Errorf("%s: depth-first: %w", ins.Name, dfErr)
		}

		start = time.Now()
		bfRes, err := checker.BreadthFirst(ins.F, src, checker.Options{})
		bfTime := time.Since(start)
		if err != nil {
			os.Remove(path)
			return fmt.Errorf("%s: breadth-first: %w", ins.Name, err)
		}
		os.Remove(path)

		fmt.Fprintf(tw, "%s\t%d\t%s\t%.3f\t%d\t\n",
			ins.Name, traceBytes/1024, dfCols, bfTime.Seconds(), bfRes.PeakMemWords*4/1024)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("(* = depth-first exceeded the memory budget, as in the paper's hardest rows)")
	return nil
}

// table3 reproduces Table 3: unsatisfiable-core size at the first iteration
// and after up to 30 iterations (or a fixed point).
func table3(instances []gen.Instance) error {
	header("Table 3: clauses and variables involved in the proof (core iteration)")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tOrig Cls\tOrig Vars\tIter1 Cls\tIter1 Vars\tFinal Cls\tFinal Vars\tIters\t")
	skipped := 0
	for _, ins := range instances {
		if ins.Hardest {
			// The paper's Table 3 omits 6pipe and 7pipe, whose proofs the
			// depth-first checker could not hold in memory; mirror that.
			skipped++
			continue
		}
		res, err := core.Iterate(ins.F, 30, solver.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", ins.Name, err)
		}
		first, _ := res.First()
		last := res.Stats[len(res.Stats)-1]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			ins.Name, ins.F.NumClauses(), ins.F.UsedVars(),
			first.NumClauses, first.NumVars, last.NumClauses, last.NumVars, res.Iterations)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Printf("(%d hardest instances omitted, as the paper's Table 3 omits 6pipe/7pipe)\n", skipped)
	}
	return nil
}

// tableEncoding measures the ASCII vs binary trace encodings (the paper's
// "2-3x compaction ... expect the efficiency of the checker to improve").
func tableEncoding(instances []gen.Instance) error {
	header("Ablation A: ASCII vs binary trace encoding")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tASCII(KB)\tBinary(KB)\tRatio\tBF time ASCII(s)\tBF time binary(s)\t")
	for _, ins := range instances {
		s, err := solver.New(ins.F, solver.Options{})
		if err != nil {
			return err
		}
		mem := &trace.MemoryTrace{}
		s.SetTrace(mem)
		if _, err := s.Solve(); err != nil {
			return err
		}

		dir, err := os.MkdirTemp("", "satcheck-enc-*")
		if err != nil {
			return err
		}
		asciiPath := filepath.Join(dir, "proof.trace")
		binPath := filepath.Join(dir, "proof.btrace")
		af, err := os.Create(asciiPath)
		if err != nil {
			return err
		}
		aw := trace.NewASCIIWriter(af)
		if err := mem.Replay(aw); err != nil {
			return err
		}
		af.Close()
		bf, err := os.Create(binPath)
		if err != nil {
			return err
		}
		bw := trace.NewBinaryWriter(bf)
		if err := mem.Replay(bw); err != nil {
			return err
		}
		bf.Close()

		start := time.Now()
		if _, err := checker.BreadthFirst(ins.F, trace.FileSource(asciiPath), checker.Options{}); err != nil {
			return err
		}
		asciiTime := time.Since(start)
		start = time.Now()
		if _, err := checker.BreadthFirst(ins.F, trace.FileSource(binPath), checker.Options{}); err != nil {
			return err
		}
		binTime := time.Since(start)
		os.RemoveAll(dir)

		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2fx\t%.3f\t%.3f\t\n",
			ins.Name, aw.BytesWritten()/1024, bw.BytesWritten()/1024,
			float64(aw.BytesWritten())/float64(bw.BytesWritten()),
			asciiTime.Seconds(), binTime.Seconds())
	}
	return tw.Flush()
}

// tableHybrid compares all three checkers (the paper's proposed
// best-of-both future work against its two implementations).
func tableHybrid(instances []gen.Instance) error {
	header("Ablation B: hybrid checker vs depth-first and breadth-first")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tDF built\tDF mem(KB)\tBF built\tBF mem(KB)\tHY built\tHY mem(KB)\tHY time(s)\t")
	for _, ins := range instances {
		_, path, _, _, err := solveTraced(ins)
		if err != nil {
			return err
		}
		src := trace.FileSource(path)
		dfRes, err := checker.DepthFirst(ins.F, src, checker.Options{})
		if err != nil {
			return err
		}
		bfRes, err := checker.BreadthFirst(ins.F, src, checker.Options{})
		if err != nil {
			return err
		}
		start := time.Now()
		hyRes, err := checker.Hybrid(ins.F, src, checker.Options{})
		hyTime := time.Since(start)
		if err != nil {
			return err
		}
		os.Remove(path)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t\n",
			ins.Name,
			dfRes.ClausesBuilt, dfRes.PeakMemWords*4/1024,
			bfRes.ClausesBuilt, bfRes.PeakMemWords*4/1024,
			hyRes.ClausesBuilt, hyRes.PeakMemWords*4/1024, hyTime.Seconds())
	}
	return tw.Flush()
}

// tableParallel compares the DAG-scheduled parallel checker against the
// sequential hybrid it is derived from, at worker counts 1, 2, and one per
// available CPU. Besides wall-clock speedup it reports the concurrent peak
// of the 4-bytes/literal memory model and the schedule-independent bound
// (Result.PeakMemBoundWords) the peak must stay under on every run.
func tableParallel(instances []gen.Instance) error {
	header("Ablation D: DAG-scheduled parallel checker vs sequential hybrid")
	maxJ := runtime.NumCPU()
	fmt.Printf("(workers for the last column: %d — one per available CPU)\n", maxJ)
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tHY time(s)\tP1 time(s)\tP2 time(s)\tPmax time(s)\tSpeedup\tP mem(KB)\tBound(KB)\t")
	for _, ins := range instances {
		_, path, _, _, err := solveTraced(ins)
		if err != nil {
			return err
		}
		src := trace.FileSource(path)
		start := time.Now()
		hyRes, err := checker.Hybrid(ins.F, src, checker.Options{})
		hyTime := time.Since(start)
		if err != nil {
			return err
		}
		var times [3]time.Duration
		var pRes *checker.Result
		for i, j := range []int{1, 2, maxJ} {
			start = time.Now()
			pRes, err = checker.Parallel(ins.F, src, checker.Options{Parallelism: j})
			times[i] = time.Since(start)
			if err != nil {
				return err
			}
			if pRes.ClausesBuilt != hyRes.ClausesBuilt ||
				pRes.ResolutionSteps != hyRes.ResolutionSteps {
				return fmt.Errorf("instance %s: parallel (j=%d) diverged from hybrid: built %d/%d steps %d/%d",
					ins.Name, j, pRes.ClausesBuilt, hyRes.ClausesBuilt,
					pRes.ResolutionSteps, hyRes.ResolutionSteps)
			}
			if pRes.PeakMemWords > pRes.PeakMemBoundWords {
				return fmt.Errorf("instance %s: parallel (j=%d) peak %d words exceeds bound %d",
					ins.Name, j, pRes.PeakMemWords, pRes.PeakMemBoundWords)
			}
		}
		os.Remove(path)
		best := times[0]
		for _, t := range times[1:] {
			if t < best {
				best = t
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.2fx\t%d\t%d\t\n",
			ins.Name, hyTime.Seconds(),
			times[0].Seconds(), times[1].Seconds(), times[2].Seconds(),
			hyTime.Seconds()/best.Seconds(),
			pRes.PeakMemWords*4/1024, pRes.PeakMemBoundWords*4/1024)
	}
	return tw.Flush()
}

// tableAblation ablates the solver features DESIGN.md calls out
// (minimization, clause deletion, restarts) and reports their effect on the
// proof and its checkability.
func tableAblation(instances []gen.Instance) error {
	header("Ablation C: solver features (effect on proof size and check time)")
	configs := []struct {
		name string
		opts solver.Options
	}{
		{"default", solver.Options{}},
		{"no-minimize", solver.Options{DisableMinimize: true}},
		{"recursive-min", solver.Options{RecursiveMinimize: true}},
		{"no-delete", solver.Options{DisableReduce: true}},
		{"no-restart", solver.Options{DisableRestarts: true}},
	}
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tConfig\tConflicts\tLearned\tTrace(KB)\tSolve(s)\tBF check(s)\t")
	for _, ins := range instances {
		for _, cfg := range configs {
			s, err := solver.New(ins.F, cfg.opts)
			if err != nil {
				return err
			}
			mem := &trace.MemoryTrace{}
			s.SetTrace(mem)
			start := time.Now()
			status, err := s.Solve()
			solveTime := time.Since(start)
			if err != nil {
				return err
			}
			if status != solver.StatusUnsat {
				return fmt.Errorf("%s/%s: expected UNSAT, got %v", ins.Name, cfg.name, status)
			}
			aw := trace.NewASCIIWriter(discard{})
			if err := mem.Replay(aw); err != nil {
				return err
			}
			start = time.Now()
			if _, err := checker.BreadthFirst(ins.F, mem, checker.Options{}); err != nil {
				return fmt.Errorf("%s/%s: %w", ins.Name, cfg.name, err)
			}
			checkTime := time.Since(start)
			st := s.Stats()
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.3f\t%.3f\t\n",
				ins.Name, cfg.name, st.Conflicts, st.Learned,
				aw.BytesWritten()/1024, solveTime.Seconds(), checkTime.Seconds())
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("(GOMAXPROCS=%d, everything single-threaded)\n", runtime.GOMAXPROCS(0))
	return nil
}

// discard is an io.Writer that throws bytes away (the ASCII writer still
// counts them, giving trace sizes without disk I/O).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// tableDP measures the paper's §1 motivation: the original Davis-Putnam
// procedure works by resolution directly but blows up in space, which is why
// DLL/CDCL search won — and, because DP's derivations ARE resolution
// derivations, the same independent checker validates them.
func tableDP(_ []gen.Instance) error {
	header("Baseline: Davis-Putnam (1960) vs CDCL — the paper's §1 space argument")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Instance\tDP peak cls\tDP resolvents\tDP time(s)\tDP proof valid\tCDCL peak lits\tCDCL time(s)\t")
	budget := 10000
	rows := []gen.Instance{
		gen.Pigeonhole(3),
		gen.Pigeonhole(4),
		gen.Pigeonhole(5),
		gen.Pigeonhole(6),
		gen.TseitinCharge(20, 3),
		gen.RandomKSAT(24, 3, 5.5, 42),
		gen.RandomKSAT(40, 3, 5.5, 42),
	}
	for _, ins := range rows {
		d, err := dp.New(ins.F, dp.Options{MaxClauses: budget})
		if err != nil {
			return err
		}
		mt := &trace.MemoryTrace{}
		d.SetTrace(mt)
		start := time.Now()
		st, _, derr := d.Solve()
		dpTime := time.Since(start)
		dpCols := ""
		switch {
		case derr != nil && errors.Is(derr, dp.ErrSpace):
			dpCols = fmt.Sprintf(">%d\t%d\t*space*\t-", budget, d.Stats().Resolvents)
		case derr != nil:
			return derr
		case st != solver.StatusUnsat:
			return fmt.Errorf("dp on %s: %v", ins.Name, st)
		default:
			valid := "yes"
			if _, err := checker.BreadthFirst(ins.F, mt, checker.Options{}); err != nil {
				valid = "NO: " + err.Error()
			}
			dpCols = fmt.Sprintf("%d\t%d\t%.3f\t%s", d.Stats().PeakClauses, d.Stats().Resolvents, dpTime.Seconds(), valid)
		}

		c, err := solver.New(ins.F, solver.Options{})
		if err != nil {
			return err
		}
		start = time.Now()
		cst, err := c.Solve()
		cdclTime := time.Since(start)
		if err != nil {
			return err
		}
		if cst != solver.StatusUnsat {
			return fmt.Errorf("cdcl on %s: %v", ins.Name, cst)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t\n", ins.Name, dpCols, c.Stats().PeakLiveLits, cdclTime.Seconds())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("(*space* = exceeded the clause budget: the paper's \"prohibitive space requirements\")")
	return nil
}
