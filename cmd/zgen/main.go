// Command zgen generates DIMACS CNF benchmark instances from the families
// used in the experiment suite (see DESIGN.md §3 for how each family stands
// in for one of the paper's industrial benchmarks).
//
// Usage:
//
//	zgen -family php -n 8 > php8.cnf
//	zgen -family cec-mult -n 5 -o mult5.cnf
//	zgen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"satcheck/internal/cnf"
	"satcheck/internal/gen"
)

type family struct {
	name  string
	usage string
	build func(n, aux int, seed int64) gen.Instance
}

var families = []family{
	{"php", "n = holes (pigeons = n+1)", func(n, _ int, _ int64) gen.Instance { return gen.Pigeonhole(n) }},
	{"tseitin", "n = graph vertices; -seed", func(n, _ int, seed int64) gen.Instance { return gen.TseitinCharge(n, seed) }},
	{"rand3", "n = variables at ratio 5.0; -seed", func(n, _ int, seed int64) gen.Instance { return gen.RandomKSAT(n, 3, 5.0, seed) }},
	{"cec-adder", "n = adder width", func(n, _ int, _ int64) gen.Instance { return gen.CECAdder(n) }},
	{"cec-mult", "n = multiplier width", func(n, _ int, _ int64) gen.Instance { return gen.CECMultiplier(n) }},
	{"cec-parity", "n = parity width", func(n, _ int, _ int64) gen.Instance { return gen.CECParity(n) }},
	{"alu", "n = ALU width", func(n, _ int, _ int64) gen.Instance { return gen.PipelineALU(n) }},
	{"bmc-counter", "n = counter bits, -aux = steps", func(n, aux int, _ int64) gen.Instance { return gen.BMCCounter(n, aux) }},
	{"bmc-shift", "n = register width, -aux = steps", func(n, aux int, _ int64) gen.Instance { return gen.BMCShiftRegister(n, aux) }},
	{"fpga", "n = nets, -aux = tracks; -seed", func(n, aux int, seed int64) gen.Instance { return gen.FPGARouting(n, aux, 5*aux, seed) }},
	{"sched", "n = jobs, -aux = slots; -seed", func(n, aux int, seed int64) gen.Instance { return gen.Scheduling(n, aux, 2*n, seed) }},
}

func main() {
	os.Exit(run())
}

func run() int {
	fam := flag.String("family", "", "instance family (see -list)")
	n := flag.Int("n", 6, "primary size parameter")
	aux := flag.Int("aux", 8, "secondary size parameter (steps/tracks/slots)")
	seed := flag.Int64("seed", 1, "random seed for randomized families")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available families")
	suite := flag.String("suite", "", "write a whole suite (full or quick) of .cnf files into the -dir directory")
	dir := flag.String("dir", ".", "output directory for -suite")
	stress := flag.Bool("proof-stress", false, "stream a stress CNF + valid proof pair for the out-of-core checker; -o is the output path prefix")
	stressLemmas := flag.Int("stress-lemmas", 1<<20, "proof-stress: pad lemma count (proof size grows linearly)")
	stressWidth := flag.Int("stress-width", 64, "proof-stress: distinct pad variables")
	stressGap := flag.Int("stress-gap", 0, "proof-stress: lemma-to-hint ID distance (0 = lemmas/8); larger gaps force more spilling")
	stressDRAT := flag.String("stress-drat", "", "proof-stress: also write a DRAT proof (ascii or binary)")
	flag.Parse()

	if *stress {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "zgen: -proof-stress needs -o as the output path prefix")
			return 1
		}
		return runProofStress(gen.StressOpts{Lemmas: *stressLemmas, Width: *stressWidth, Gap: *stressGap}, *out, *stressDRAT)
	}

	if *suite != "" {
		var instances []gen.Instance
		switch *suite {
		case "full":
			instances = gen.Suite()
		case "quick":
			instances = gen.SuiteQuick()
		default:
			fmt.Fprintf(os.Stderr, "zgen: unknown suite %q\n", *suite)
			return 1
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "zgen:", err)
			return 1
		}
		for _, ins := range instances {
			path := filepath.Join(*dir, ins.Name+".cnf")
			fh, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zgen:", err)
				return 1
			}
			fmt.Fprintf(fh, "c %s\nc domain: %s\nc stands in for: %s\n", ins.Name, ins.Domain, ins.Analog)
			if err := cnf.WriteDimacs(fh, ins.F); err != nil {
				fh.Close()
				fmt.Fprintln(os.Stderr, "zgen:", err)
				return 1
			}
			fh.Close()
			fmt.Printf("%s: %d vars, %d clauses\n", path, ins.F.NumVars, ins.F.NumClauses())
		}
		return 0
	}

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		for _, f := range families {
			fmt.Fprintf(tw, "%s\t%s\n", f.name, f.usage)
		}
		tw.Flush()
		return 0
	}

	for _, f := range families {
		if f.name != *fam {
			continue
		}
		ins := f.build(*n, *aux, *seed)
		w := os.Stdout
		if *out != "" {
			fh, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zgen:", err)
				return 1
			}
			defer fh.Close()
			w = fh
		}
		fmt.Fprintf(w, "c %s\nc domain: %s\n", ins.Name, ins.Domain)
		if ins.Analog != "" {
			fmt.Fprintf(w, "c stands in for: %s\n", ins.Analog)
		}
		if err := cnf.WriteDimacs(w, ins.F); err != nil {
			fmt.Fprintln(os.Stderr, "zgen:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "zgen: unknown family %q (try -list)\n", *fam)
	return 1
}

// runProofStress streams the out-of-core stress pair <prefix>.cnf +
// <prefix>.lrat (and optionally <prefix>.drat) in O(1) memory, so the proof
// can be made arbitrarily larger than the machine's RAM.
func runProofStress(o gen.StressOpts, prefix, dratMode string) int {
	write := func(path string, emit func(w *bufio.Writer) error) bool {
		fh, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zgen:", err)
			return false
		}
		bw := bufio.NewWriterSize(fh, 1<<20)
		err = emit(bw)
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "zgen:", err)
			return false
		}
		st, err := os.Stat(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zgen:", err)
			return false
		}
		fmt.Printf("%s: %d bytes\n", path, st.Size())
		return true
	}
	if !write(prefix+".cnf", func(w *bufio.Writer) error { return gen.WriteStressCNF(w, o) }) {
		return 1
	}
	if !write(prefix+".lrat", func(w *bufio.Writer) error { return gen.WriteStressLRAT(w, o) }) {
		return 1
	}
	switch dratMode {
	case "":
	case "ascii", "binary":
		if !write(prefix+".drat", func(w *bufio.Writer) error {
			return gen.WriteStressDRAT(w, o, dratMode == "binary")
		}) {
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "zgen: -stress-drat must be ascii or binary, not %q\n", dratMode)
		return 1
	}
	return 0
}
