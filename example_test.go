package satcheck_test

import (
	"fmt"
	"log"

	"satcheck"
)

// php32 builds the pigeonhole instance PHP(3,2): 3 pigeons, 2 holes —
// unsatisfiable.
func php32() *satcheck.Formula {
	f := satcheck.NewFormula(6)
	v := func(p, h int) int { return p*2 + h + 1 }
	for p := 0; p < 3; p++ {
		f.AddClause(v(p, 0), v(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				f.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return f
}

// The fundamental flow: solve, then validate the UNSAT claim independently.
func Example() {
	f := php32()
	run, err := satcheck.SolveWithProof(f, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(run.Status)

	_, err = satcheck.Check(f, run.Trace, satcheck.BreadthFirst, satcheck.CheckOptions{})
	fmt.Println("proof valid:", err == nil)
	// Output:
	// UNSATISFIABLE
	// proof valid: true
}

// Validating the SAT direction is a linear-time model check.
func ExampleVerifyModel() {
	f := satcheck.NewFormula(2)
	f.AddClause(1, 2)
	f.AddClause(-1)
	st, model, err := satcheck.Solve(f, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st)
	_, ok := satcheck.VerifyModel(f, model)
	fmt.Println("model valid:", ok)
	// Output:
	// SATISFIABLE
	// model valid: true
}

// The depth-first checker's by-product is an unsatisfiable core; iterating
// shrinks it (the paper's Table 3 procedure).
func ExampleIterateCore() {
	f := php32()
	// Add satisfiable padding the core must exclude.
	f.AddClause(7, 8)
	f.AddClause(-7, 9)

	res, err := satcheck.IterateCore(f, 30, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	last := res.Stats[len(res.Stats)-1]
	fmt.Printf("core: %d of %d clauses\n", last.NumClauses, f.NumClauses())
	// Output:
	// core: 9 of 11 clauses
}

// A Craig interpolant separates an A/B clause partition in their shared
// vocabulary; the result is machine-checkable.
func ExampleInterpolate() {
	f := satcheck.NewFormula(2)
	f.AddClause(1)     // A
	f.AddClause(-1, 2) // A
	f.AddClause(-2)    // B
	run, err := satcheck.SolveWithProof(f, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	inA := []bool{true, true, false}
	it, err := satcheck.Interpolate(f, run.Trace, inA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shared vars:", len(it.Vars))
	fmt.Println("verified:", it.VerifyAgainst(f, inA, satcheck.SolverOptions{}) == nil)
	// Output:
	// shared vars: 1
	// verified: true
}

// Trimming keeps only the clauses the proof needs; the result is still a
// valid trace for the same formula.
func ExampleTrimTrace() {
	f := php32()
	run, err := satcheck.SolveWithProof(f, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	trimmed := &satcheck.MemoryTrace{}
	if _, err := satcheck.TrimTrace(f, run.Trace, trimmed); err != nil {
		log.Fatal(err)
	}
	_, err = satcheck.Check(f, trimmed, satcheck.DepthFirst, satcheck.CheckOptions{})
	fmt.Println("trimmed proof valid:", err == nil)
	// Output:
	// trimmed proof valid: true
}
