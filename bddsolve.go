package satcheck

import (
	"io"

	"satcheck/internal/bdd"
	"satcheck/internal/checker"
)

// The BDD backend (see internal/bdd and docs/BDD.md): a reduced-ordered-BDD
// solver whose every operation appends extended-resolution proof steps, so
// UNSAT answers arrive with a complete ER proof and SAT answers with a model
// read off a satisfying path. Both are claims until checked: CheckER bridges
// the proof to LRAT for the independent hint-following verifier, and
// VerifyModel covers the SAT side.

type (
	// BDDOptions configures SolveBDD (variable order, bucket elimination,
	// node budget, proof emission).
	BDDOptions = bdd.Options
	// BDDResult is a BDD solve outcome: status, model or ER proof, stats.
	BDDResult = bdd.Result
	// BDDOrder selects the variable-ordering heuristic.
	BDDOrder = bdd.Order
	// BDDStats counts a BDD solve's work.
	BDDStats = bdd.Stats
	// ERProof is an extended-resolution proof (extension-variable
	// definitions plus RUP lemmas with hints).
	ERProof = bdd.Proof
)

// The variable-ordering heuristics.
const (
	// BDDOrderStatic orders variables by first occurrence.
	BDDOrderStatic = bdd.OrderStatic
	// BDDOrderForce refines the static order with FORCE-style
	// center-of-gravity iterations.
	BDDOrderForce = bdd.OrderForce
	// BDDOrderNatural keeps the DIMACS numbering (control baseline).
	BDDOrderNatural = bdd.OrderNatural
)

// ParseBDDOrder parses an ordering name ("static", "force", "natural").
func ParseBDDOrder(s string) (BDDOrder, error) { return bdd.ParseOrder(s) }

// SolveBDD decides f by BDD construction. With Options.Proof set, an UNSAT
// verdict carries an ER proof for CheckER; SAT verdicts carry a model for
// VerifyModel. StatusUnknown reports an exhausted node budget.
func SolveBDD(f *Formula, opts BDDOptions) (*BDDResult, error) {
	return bdd.Solve(f, opts)
}

// CheckERProof validates an in-memory ER proof of f's unsatisfiability by
// bridging it to LRAT and running the independent hint-following verifier.
func CheckERProof(f *Formula, p *ERProof, opts CheckOptions) (*CheckResult, error) {
	return bdd.CheckER(f, p, opts)
}

// CheckER reads an ER proof from src and validates it against f (the
// ProofSource arm used by CheckRequest and the zcheckd service).
func CheckER(f *Formula, src ProofSource, opts CheckOptions) (*CheckResult, error) {
	p, err := loadERProof(src)
	if err != nil {
		return nil, err
	}
	return bdd.CheckER(f, p, opts)
}

// ParseERProof reads an ER proof in its ASCII format ("p er" header,
// definition and RUP lines).
func ParseERProof(r io.Reader) (*ERProof, error) { return bdd.ParseER(r) }

// WriteERProof writes p in the ASCII ER format.
func WriteERProof(w io.Writer, p *ERProof) error { return bdd.WriteER(w, p) }

// WriteERAsLRAT bridges the ER proof and writes the resulting LRAT text, for
// handing BDD proofs to external LRAT tooling.
func WriteERAsLRAT(w io.Writer, f *Formula, p *ERProof) error {
	return bdd.WriteLRAT(w, f, p)
}

// loadERProof opens the source and parses the ER proof. Parse failures are
// *CheckError (FailTrace), matching the clausal checkers: a malformed proof
// is a rejection report, not an infrastructure error.
func loadERProof(src ProofSource) (*ERProof, error) {
	rc, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	p, err := bdd.ParseER(rc)
	if err != nil {
		return nil, &CheckError{Kind: checker.FailTrace, ClauseID: -1, Step: -1, Err: err}
	}
	return p, nil
}
