// Unsatisfiable-core extraction for failure diagnosis.
//
// The paper's §4 shows that the depth-first checker's by-product — the set
// of original clauses involved in the proof — is an unsatisfiable core, and
// that iterating solve→check→extract shrinks it: "In FPGA routing, an
// unsatisfiable instance means that the channels are un-routable. The
// unsatisfiable core can help the designers concentrate on the reasons
// (constraints) that are responsible for the routing failure."
//
// This example builds an un-routable FPGA track-assignment instance
// (hundreds of nets and channels, one over-subscribed channel hidden among
// them), extracts and iterates the core, and maps the surviving clauses back
// to nets — pinpointing the over-subscription.
//
// Run with:
//
//	go run ./examples/unsatcore
package main

import (
	"fmt"
	"log"
	"sort"

	"satcheck"
	"satcheck/internal/gen"
)

const (
	nets     = 40
	tracks   = 6
	channels = 30
	seed     = 2026
)

func main() {
	ins := gen.FPGARouting(nets, tracks, channels, seed)
	fmt.Printf("routing instance: %d nets x %d tracks, %d channels\n", nets, tracks, channels)
	fmt.Printf("encoding: %d variables, %d clauses\n\n", ins.F.NumVars, ins.F.NumClauses())

	status, _, err := satcheck.Solve(ins.F, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routability: %v\n", status)
	if status != satcheck.StatusUnsat {
		log.Fatal("expected an un-routable instance")
	}

	// Iterate core extraction to a fixed point (the paper's Table 3
	// procedure, up to 30 rounds). Every intermediate proof is validated by
	// the depth-first checker.
	res, err := satcheck.IterateCore(ins.F, 30, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	first, _ := res.First()
	last := res.Stats[len(res.Stats)-1]
	fmt.Printf("\ncore iteration (validated every round):\n")
	fmt.Printf("  iteration 1: %6d clauses, %4d vars\n", first.NumClauses, first.NumVars)
	fmt.Printf("  iteration %d: %6d clauses, %4d vars", res.Iterations, last.NumClauses, last.NumVars)
	if res.FixedPoint {
		fmt.Print("  (fixed point)")
	}
	fmt.Printf("\n  reduction: %d -> %d clauses (%.1f%% of the encoding)\n",
		ins.F.NumClauses(), last.NumClauses, 100*float64(last.NumClauses)/float64(ins.F.NumClauses()))

	// Map core clauses back to the nets they constrain. Variable layout of
	// gen.FPGARouting: variable net*tracks + track + 1.
	netHit := map[int]int{}
	for _, id := range res.ClauseIDs {
		for _, lit := range ins.F.Clauses[id] {
			net := (int(lit.Var()) - 1) / tracks
			netHit[net]++
		}
	}
	var coreNets []int
	for n := range netHit {
		coreNets = append(coreNets, n)
	}
	sort.Ints(coreNets)
	fmt.Printf("\nnets implicated by the core: %v\n", coreNets)
	fmt.Printf("diagnosis: %d mutually conflicting nets share a channel with only %d tracks\n",
		len(coreNets), tracks)
	if len(coreNets) == tracks+1 {
		fmt.Println("=> exactly the over-subscribed channel; the other",
			nets-len(coreNets), "nets are irrelevant to the failure")
	}
}
