// Fault injection: what a buggy solver looks like to the checker.
//
// The paper's motivation (§3): "during the recent SAT 2002 solver
// competition, quite a few submitted SAT solvers were found to be buggy.
// Thus, a rigorous checker is needed to validate the solvers", and the
// checker "can also provide as much information as possible about the
// failure to help debug the solver."
//
// This example solves a pigeonhole instance, then injects every fault class
// from the catalogue — each modeling a real solver bug — into the recorded
// trace and shows the structured diagnostic the checker produces.
//
// Run with:
//
//	go run ./examples/faultinjection
package main

import (
	"errors"
	"fmt"
	"log"

	"satcheck"
	"satcheck/internal/faults"
	"satcheck/internal/gen"
)

func main() {
	ins := gen.Pigeonhole(6)
	fmt.Printf("instance: %s\n\n", ins)

	run, err := satcheck.SolveWithProof(ins.F, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if run.Status != satcheck.StatusUnsat {
		log.Fatalf("expected UNSAT, got %v", run.Status)
	}
	if _, err := satcheck.Check(ins.F, run.Trace, satcheck.BreadthFirst, satcheck.CheckOptions{}); err != nil {
		log.Fatalf("pristine trace rejected: %v", err)
	}
	fmt.Println("pristine trace: PROOF VALID")
	fmt.Println()
	fmt.Println("injecting solver bugs:")

	for _, m := range faults.All() {
		fmt.Printf("\n[%s]\n  bug: %s\n", m.Name, m.Bug)
		detected := false
		applied := 0
		for seed := int64(0); seed < 8 && !detected; seed++ {
			bad, ok := faults.Inject(m, run.Trace, seed)
			if !ok {
				continue
			}
			applied++
			_, err := satcheck.Check(ins.F, bad, satcheck.BreadthFirst, satcheck.CheckOptions{})
			if err == nil {
				// The corrupted trace happened to still encode a valid
				// resolution proof (e.g. a dropped minimization step just
				// weakens a clause); try another injection site.
				continue
			}
			var ce *satcheck.CheckError
			if errors.As(err, &ce) {
				fmt.Printf("  detected: %v\n", ce)
			} else {
				fmt.Printf("  detected: %v\n", err)
			}
			detected = true
		}
		if !detected {
			// Distinguish "mutation never applied" from "applied but benign":
			// only the latter is a statement about the checker.
			if applied == 0 {
				fmt.Println("  not applicable to this trace at any seed (skipped, not survived)")
			} else {
				fmt.Printf("  %d injection(s) all left a still-valid proof (weakening-only corruption)\n", applied)
			}
		}
	}
}
