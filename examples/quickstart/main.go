// Quickstart: solve a CNF formula and independently validate the answer.
//
// The two directions of solver validation from the paper's introduction:
//   - SAT claims are validated by checking the model against the formula
//     (linear time);
//   - UNSAT claims are validated by replaying the solver's resolution trace
//     with an independent checker.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"satcheck"
)

func main() {
	// A satisfiable formula: (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3).
	sat := satcheck.NewFormula(3)
	sat.AddClause(1, 2)
	sat.AddClause(-1, 3)
	sat.AddClause(-2, -3)

	status, model, err := satcheck.Solve(sat, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formula 1: %v\n", status)
	if status == satcheck.StatusSat {
		if bad, ok := satcheck.VerifyModel(sat, model); ok {
			fmt.Println("  model independently verified against every clause")
		} else {
			log.Fatalf("  BUG: model fails clause %d", bad)
		}
	}

	// An unsatisfiable formula: the pigeonhole principle PHP(3,2) —
	// 3 pigeons, 2 holes.
	unsat := satcheck.NewFormula(6)
	v := func(p, h int) int { return p*2 + h + 1 }
	for p := 0; p < 3; p++ {
		unsat.AddClause(v(p, 0), v(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				unsat.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}

	run, err := satcheck.SolveWithProof(unsat, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formula 2: %v\n", run.Status)
	if run.Status != satcheck.StatusUnsat {
		log.Fatal("expected UNSAT")
	}

	// Validate the unsatisfiability claim with all three checker
	// strategies. A nil error is a machine-checked resolution proof that
	// the formula has no satisfying assignment.
	for _, m := range []satcheck.Method{satcheck.DepthFirst, satcheck.BreadthFirst, satcheck.Hybrid} {
		res, err := satcheck.Check(unsat, run.Trace, m, satcheck.CheckOptions{})
		if err != nil {
			log.Fatalf("  %v checker rejected the proof: %v", m, err)
		}
		fmt.Printf("  %-13v proof valid: %d/%d learned clauses built, %d resolutions\n",
			m, res.ClausesBuilt, res.LearnedTotal, res.ResolutionSteps)
	}

	// The depth-first checker also reports which original clauses the proof
	// used — here, all of them (the pigeonhole principle needs every
	// constraint).
	res, _ := satcheck.Check(unsat, run.Trace, satcheck.DepthFirst, satcheck.CheckOptions{})
	fmt.Printf("  unsatisfiable core: %d of %d clauses\n", len(res.CoreClauses), unsat.NumClauses())
}
