// Craig interpolation from a checked equivalence proof.
//
// When a miter is UNSAT, its resolution proof contains more than a yes/no
// answer. Partition the CNF into A = the Tseitin clauses of the first
// implementation and B = everything else (the second implementation plus
// the difference assertion): the Craig interpolant computed from the proof
// is a lemma over the shared signals — a summary of what A forces that
// already contradicts B. This is the mechanism (McMillan, CAV 2003) that
// turned proof-logging SAT solvers into unbounded model checkers, and it
// falls straight out of the checkable traces this library produces.
//
// The partition uses the Tseitin encoder's clause provenance
// (Encoding.ClauseGate) to assign each CNF clause to the sub-circuit whose
// gate produced it.
//
// Run with:
//
//	go run ./examples/interpolation
package main

import (
	"fmt"
	"log"

	"satcheck"
	"satcheck/internal/circuit"
)

const width = 8

func main() {
	// Build BOTH adder implementations inside one circuit over shared
	// inputs, recording the gate boundary between them.
	c := circuit.New()
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	cin := c.Input("cin")

	implBoundary := circuit.Signal(c.NumSignals()) // gates <= boundary: inputs
	sum1, cout1 := c.RippleAdder(a, b, cin)
	rippleEnd := circuit.Signal(c.NumSignals()) // gates in (implBoundary, rippleEnd]: ripple adder

	sum2, cout2 := c.CarrySelectAdder(a, b, cin)

	// Difference detector.
	diffs := make([]circuit.Signal, 0, width+1)
	for i := range sum1 {
		diffs = append(diffs, c.Xor(sum1[i], sum2[i]))
	}
	diffs = append(diffs, c.Xor(cout1, cout2))
	diff := c.Or(diffs...)
	c.MarkOutput(diff)

	enc := circuit.Encode(c)
	enc.Assert(diff, true) // "some input distinguishes the adders"

	run, err := satcheck.SolveWithProof(enc.F, satcheck.SolverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if run.Status != satcheck.StatusUnsat {
		log.Fatalf("adders differ?! %v", run.Status)
	}
	if _, err := satcheck.Check(enc.F, run.Trace, satcheck.BreadthFirst, satcheck.CheckOptions{}); err != nil {
		log.Fatalf("equivalence proof failed validation: %v", err)
	}
	fmt.Printf("equivalence of two %d-bit adders proved and validated (%d learned clauses)\n",
		width, run.Stats.Learned)

	// Partition by clause provenance: A = the ripple adder's gate clauses.
	inA := make([]bool, enc.F.NumClauses())
	nA := 0
	for i := range enc.F.Clauses {
		g := enc.GateOfClause(i)
		if g > implBoundary && g <= rippleEnd {
			inA[i] = true
			nA++
		}
	}
	fmt.Printf("partition: A = %d ripple-adder clauses, B = %d remaining (carry-select + miter + assertion)\n",
		nA, enc.F.NumClauses()-nA)

	it, err := satcheck.Interpolate(enc.F, run.Trace, inA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpolant: %d gates over %d shared variables\n", it.Gates, len(it.Vars))

	if err := it.VerifyAgainst(enc.F, inA, satcheck.SolverOptions{}); err != nil {
		log.Fatalf("interpolant failed verification: %v", err)
	}
	fmt.Println("verified: A ⊨ I, I ∧ B unsatisfiable, vocabulary shared")
	fmt.Println()
	fmt.Println("reading: I is what the ripple adder's logic guarantees about the shared")
	fmt.Println("signals — already enough, by itself, to contradict \"the outputs differ\".")
}
