// Bounded model checking with validated UNSAT verdicts per bound.
//
// BMC is the application that made SAT solvers central to model checking
// (Biere et al., cited as [2] in the paper): unroll a sequential circuit k
// steps, assert that some step reaches a bad state, and ask a SAT solver.
// SAT means a concrete counterexample trace; UNSAT means the property holds
// up to bound k. The UNSAT side is exactly the answer you must not take on
// faith — a solver bug here silently signs off a broken design — so every
// bound's UNSAT claim is validated by the resolution checker.
//
// The design under verification: a saturating traffic-light controller made
// of a 2-bit state machine (red -> red+amber -> green -> amber -> red) with
// a free "pedestrian request" input that can hold the light at red. The
// property: the controller never shows green and amber together — encoded
// as a bad-state net. We also check a deliberately broken variant to show a
// counterexample being found and simulated.
//
// Run with:
//
//	go run ./examples/bmc
package main

import (
	"fmt"
	"log"

	"satcheck/internal/bmc"
	"satcheck/internal/circuit"
)

// buildController returns the sequential traffic-light circuit. When broken
// is true, the amber decoder is mis-wired so state green raises amber too.
func buildController(broken bool) *circuit.Sequential {
	c := circuit.New()
	// State register: 2 bits. 00=red, 01=red+amber, 10=green, 11=amber.
	s0 := c.Input("s0")
	s1 := c.Input("s1")
	req := c.Input("ped_request")

	// Next state: increment mod 4, but hold in red (00) while a pedestrian
	// request is active.
	inc0 := c.Not(s0)
	inc1 := c.Xor(s1, s0)
	inRed := c.Nor(s0, s1)
	hold := c.And(inRed, req)
	n0 := c.Mux(hold, s0, inc0)
	n1 := c.Mux(hold, s1, inc1)

	// Output decoders.
	green := c.And(s1, c.Not(s0))
	var amber circuit.Signal
	if broken {
		amber = s1 // bug: green (10) also raises amber
	} else {
		amber = s0 // states 01 and 11
	}
	bad := c.And(green, amber)

	return &circuit.Sequential{
		Comb: c,
		Registers: []circuit.Register{
			{Q: s0, D: n0, Init: false},
			{Q: s1, D: n1, Init: false},
		},
		Bad: bad,
	}
}

func main() {
	fmt.Println("BMC: traffic-light controller, property ¬(green ∧ amber)")
	fmt.Println("correct design:")
	results, err := bmc.Run(buildController(false), 12, bmc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if !r.Holds {
			log.Fatal("correct design violated its property?!")
		}
		fmt.Printf("  k=%2d: property holds (proof: %d learned clauses, %d resolutions, validated)\n",
			r.Bound, r.CheckResult.LearnedTotal, r.CheckResult.ResolutionSteps)
	}
	fmt.Println("  property holds through every checked bound, each proof independently validated")

	fmt.Println("\nbroken design (amber decoder mis-wired):")
	results, err = bmc.Run(buildController(true), 12, bmc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Holds {
			fmt.Printf("  k=%2d: property holds (validated)\n", r.Bound)
		} else {
			fmt.Printf("  k=%2d: PROPERTY VIOLATED at step %d (counterexample simulated)\n",
				r.Bound, r.ViolationStep)
		}
	}
}
