// Equivalence checking with a validated verdict.
//
// Combinational equivalence checking (CEC) is one of the EDA applications
// the paper's introduction motivates: "as these applications are often
// mission critical, it is very important to ensure that the results
// provided by their SAT engines are correct." Here we check a ripple-carry
// adder against a carry-select adder using the cec package, which validates
// the SAT solver's verdict either way: UNSAT (equivalent) by replaying the
// resolution proof through the independent checker, SAT (different) by
// simulating the counterexample on both circuits.
//
// Run with:
//
//	go run ./examples/equivalence
package main

import (
	"fmt"
	"log"

	"satcheck/internal/cec"
	"satcheck/internal/checker"
	"satcheck/internal/circuit"
)

const width = 16

func buildAdder(carrySelect bool) *circuit.Circuit {
	c := circuit.New()
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	cin := c.Input("cin")
	var sum []circuit.Signal
	var cout circuit.Signal
	if carrySelect {
		sum, cout = c.CarrySelectAdder(a, b, cin)
	} else {
		sum, cout = c.RippleAdder(a, b, cin)
	}
	for _, s := range sum {
		c.MarkOutput(s)
	}
	c.MarkOutput(cout)
	return c
}

// buildBroken returns a ripple adder with its carry chain cut at bit 7 —
// a classic copy-paste optimization bug.
func buildBroken() *circuit.Circuit {
	c := circuit.New()
	a := c.InputBus("a", width)
	b := c.InputBus("b", width)
	cin := c.Input("cin")
	sum := make([]circuit.Signal, width)
	carry := cin
	for i := 0; i < width; i++ {
		sum[i], carry = c.FullAdder(a[i], b[i], carry)
		if i == 7 {
			carry = c.Const(false) // the bug
		}
	}
	for _, s := range sum {
		c.MarkOutput(s)
	}
	c.MarkOutput(carry)
	return c
}

func report(title string, a, b *circuit.Circuit) {
	fmt.Println(title)
	v, err := cec.Check(a, b, cec.Options{Method: checker.DepthFirst})
	if err != nil {
		log.Fatal(err)
	}
	if v.Equivalent {
		res := v.CheckResult
		fmt.Printf("  EQUIVALENT — proof validated: %d learned clauses, %d built (%.0f%%), %d resolutions\n",
			res.LearnedTotal, res.ClausesBuilt, 100*res.BuiltFraction(), res.ResolutionSteps)
		fmt.Printf("  unsat core: %d clauses\n", len(res.CoreClauses))
	} else {
		fmt.Printf("  NOT EQUIVALENT — counterexample validated by simulation\n")
		// Decode the first few differing inputs for the report.
		fmt.Printf("  distinguishing inputs: a/b/cin bits = %v...\n", v.Counterexample[:8])
	}
	fmt.Println()
}

func main() {
	report(fmt.Sprintf("CEC: ripple-carry vs carry-select adder, %d bits", width),
		buildAdder(false), buildAdder(true))
	report("CEC: ripple-carry vs broken adder (carry chain cut at bit 7)",
		buildAdder(false), buildBroken())
}
