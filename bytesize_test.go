package satcheck_test

import (
	"testing"

	"satcheck"
)

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":      0,
		"123":    123,
		"64KiB":  64 << 10,
		"64k":    64 << 10,
		"64KB":   64_000,
		"256MiB": 256 << 20,
		"2GiB":   2 << 30,
		"2g":     2 << 30,
		"1TiB":   1 << 40,
		"1tb":    1_000_000_000_000,
		"512B":   512,
		" 8 MiB": 8 << 20,
		"64mib":  64 << 20,
	}
	for in, want := range good {
		got, err := satcheck.ParseByteSize(in)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	bad := []string{"", "MiB", "-1", "1.5GiB", "64QiB", "banana", "9999999999GiB"}
	for _, in := range bad {
		if got, err := satcheck.ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) = %d, want error", in, got)
		}
	}
}
