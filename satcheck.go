// Package satcheck validates SAT solvers with an independent
// resolution-based checker, implementing Zhang & Malik, "Validating SAT
// Solvers Using an Independent Resolution-Based Checker: Practical
// Implementations and Other Applications" (DATE 2003).
//
// The package bundles:
//
//   - a Chaff-style CDCL SAT solver instrumented to emit a resolution trace
//     when it claims unsatisfiability;
//   - four independent checkers (depth-first, breadth-first, hybrid, and a
//     DAG-scheduled parallel variant of the hybrid) that replay the trace
//     and verify that the empty clause is derivable from the original
//     clauses by resolution;
//   - unsatisfiable-core extraction from the depth-first checker's
//     by-product, with the paper's iterate-to-fixed-point refinement;
//   - DIMACS I/O, a circuit/Tseitin front-end, and generators for the
//     benchmark families of the paper's evaluation.
//
// Quick start:
//
//	f, _ := satcheck.ParseDimacsFile("formula.cnf")
//	run, err := satcheck.SolveWithProof(f, satcheck.SolverOptions{})
//	if err != nil { ... }
//	if run.Status == satcheck.StatusUnsat {
//	    res, err := satcheck.Check(f, run.Trace, satcheck.DepthFirst, satcheck.CheckOptions{})
//	    // err == nil  ==>  the UNSAT claim is proved, independently.
//	    _ = res
//	}
package satcheck

import (
	"fmt"
	"io"

	"satcheck/internal/checker"
	"satcheck/internal/cnf"
	"satcheck/internal/core"
	"satcheck/internal/incremental"
	"satcheck/internal/interp"
	"satcheck/internal/kernelcheck"
	"satcheck/internal/ooc"
	"satcheck/internal/proofstat"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
	"satcheck/internal/tracecheck"
	"satcheck/internal/trim"
)

// Re-exported substrate types. The facade is the supported public surface;
// internal packages may change freely.
type (
	// Formula is a CNF formula.
	Formula = cnf.Formula
	// Clause is a disjunction of literals.
	Clause = cnf.Clause
	// Lit is a literal.
	Lit = cnf.Lit
	// Var is a propositional variable (1-based).
	Var = cnf.Var
	// Model is a satisfying assignment.
	Model = cnf.Model
	// SolverOptions configures the CDCL solver.
	SolverOptions = solver.Options
	// SolverStats reports solver counters.
	SolverStats = solver.Stats
	// CheckOptions configures the checkers.
	CheckOptions = checker.Options
	// CheckResult reports a successful validation.
	CheckResult = checker.Result
	// CheckError is the structured diagnostic of a failed validation.
	CheckError = checker.CheckError
	// Status is a solver outcome.
	Status = solver.Status
	// TraceSink receives trace records from the solver.
	TraceSink = trace.Sink
	// TraceSource replays a recorded trace for a checker.
	TraceSource = trace.Source
	// MemoryTrace buffers a trace in memory (both Sink and Source).
	MemoryTrace = trace.MemoryTrace
	// CoreExtraction is one validated unsatisfiable core.
	CoreExtraction = core.Extraction
	// CoreIteration is the result of iterated core refinement.
	CoreIteration = core.IterateResult
)

// Solver outcomes.
const (
	StatusUnknown = solver.StatusUnknown
	StatusSat     = solver.StatusSat
	StatusUnsat   = solver.StatusUnsat
)

// NewFormula returns an empty formula over numVars variables.
func NewFormula(numVars int) *Formula { return cnf.NewFormula(numVars) }

// ParseDimacs reads a DIMACS CNF formula.
func ParseDimacs(r io.Reader) (*Formula, error) { return cnf.ParseDimacs(r) }

// ParseDimacsFile reads a DIMACS CNF file.
func ParseDimacsFile(path string) (*Formula, error) { return cnf.ParseDimacsFile(path) }

// WriteDimacs writes f in DIMACS format.
func WriteDimacs(w io.Writer, f *Formula) error { return cnf.WriteDimacs(w, f) }

// VerifyModel checks a claimed satisfying assignment against the formula —
// the linear-time "SAT side" of solver validation. It returns the index of
// the first unsatisfied clause, or (-1, true).
func VerifyModel(f *Formula, m Model) (badClause int, ok bool) { return cnf.VerifyModel(f, m) }

// Run is the outcome of SolveWithProof.
type Run struct {
	// Status is the solver's claim.
	Status Status
	// Model holds the satisfying assignment when Status == StatusSat.
	Model Model
	// Trace holds the resolution trace when Status == StatusUnsat; it can be
	// handed to Check. Nil for SAT runs.
	Trace *MemoryTrace
	// Stats are the solver counters.
	Stats SolverStats
}

// Solve decides f and returns the model for satisfiable formulas. No trace
// is recorded (use SolveWithProof to validate UNSAT claims).
func Solve(f *Formula, opts SolverOptions) (Status, Model, error) {
	s, err := solver.New(f, opts)
	if err != nil {
		return StatusUnknown, nil, err
	}
	st, err := s.Solve()
	if err != nil {
		return st, nil, err
	}
	return st, s.Model(), nil
}

// SolveWithProof decides f while recording the resolution trace needed to
// independently validate an UNSAT answer.
func SolveWithProof(f *Formula, opts SolverOptions) (*Run, error) {
	s, err := solver.New(f, opts)
	if err != nil {
		return nil, err
	}
	tr := &trace.MemoryTrace{}
	s.SetTrace(tr)
	st, err := s.Solve()
	if err != nil {
		return nil, err
	}
	run := &Run{Status: st, Stats: s.Stats()}
	switch st {
	case StatusSat:
		run.Model = s.Model()
	case StatusUnsat:
		run.Trace = tr
	}
	return run, nil
}

// SolveToSink decides f streaming the trace to the given sink (e.g. a
// trace.ASCIIWriter over a file), the production configuration for proofs
// too large for memory.
func SolveToSink(f *Formula, opts SolverOptions, sink TraceSink) (Status, SolverStats, error) {
	s, err := solver.New(f, opts)
	if err != nil {
		return StatusUnknown, solver.Stats{}, err
	}
	s.SetTrace(sink)
	st, err := s.Solve()
	return st, s.Stats(), err
}

// Method selects a checker traversal strategy.
type Method int

// The checker strategies.
const (
	// DepthFirst builds only the clauses the proof needs and yields an
	// unsatisfiable core; it holds the whole trace in memory (§3.2).
	DepthFirst Method = iota
	// BreadthFirst streams the trace with use-counted eviction and bounded
	// memory (§3.3).
	BreadthFirst
	// Hybrid marks the needed clauses on disk and then builds only those,
	// breadth-first (the paper's proposed best-of-both).
	Hybrid
	// Parallel is the hybrid strategy with the marked clauses built on a
	// worker pool scheduled by the proof's dependency DAG
	// (CheckOptions.Parallelism workers). Verdicts, cores, and failure
	// diagnostics are identical to Hybrid's.
	Parallel
	// BDD is the reduced-ordered-BDD backend (see SolveBDD): as a solving
	// method it emits extended-resolution proofs; as a CheckRequest method it
	// selects the ER→LRAT bridge check (FormatER), which has a single
	// hint-following strategy.
	BDD
	// Kernel routes the proof through the trusted kernel
	// (internal/kernel): the trace is exported to TraceCheck clause form,
	// forward-checked into LRAT hints, and the hints are verified by the
	// minimal allocation-free flat-array core that every proof format
	// terminates in. Produces an unsatisfiable core (the kernel's backward
	// hint closure). For FormatDRAT it forward-checks the clausal proof and
	// kernel-verifies the recorded hints.
	Kernel
	// OOC is the out-of-core variant of Kernel (internal/ooc): the proof is
	// partitioned into windows sized to CheckOptions.MemBudgetBytes, each
	// window is verified by the trusted kernel over a bounded working set,
	// and learned clauses crossing window boundaries are spilled to a
	// checksummed disk index. RUP-only — RAT lemmas are rejected fail-closed
	// — and otherwise verdict- and core-identical to Kernel.
	OOC
)

// String names the method.
func (m Method) String() string {
	switch m {
	case DepthFirst:
		return "depth-first"
	case BreadthFirst:
		return "breadth-first"
	case Hybrid:
		return "hybrid"
	case Parallel:
		return "parallel"
	case BDD:
		return "bdd"
	case Kernel:
		return "kernel"
	case OOC:
		return "ooc"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Check validates an UNSAT trace against the original formula. A nil error
// means the unsatisfiability claim is proved; a *CheckError carries
// structured diagnostics about the first invalid step otherwise.
func Check(f *Formula, src TraceSource, m Method, opts CheckOptions) (*CheckResult, error) {
	switch m {
	case DepthFirst:
		return checker.DepthFirst(f, src, opts)
	case BreadthFirst:
		return checker.BreadthFirst(f, src, opts)
	case Hybrid:
		return checker.Hybrid(f, src, opts)
	case Parallel:
		return checker.Parallel(f, src, opts)
	case Kernel:
		return kernelcheck.KernelCheckTrace(f, src, opts)
	case OOC:
		return ooc.CheckTrace(f, src, opts)
	default:
		return nil, fmt.Errorf("satcheck: unknown check method %d", int(m))
	}
}

// CheckFile validates a trace file produced by SolveToSink.
func CheckFile(f *Formula, tracePath string, m Method, opts CheckOptions) (*CheckResult, error) {
	return Check(f, trace.FileSource(tracePath), m, opts)
}

// ExtractCore solves f, validates the proof, and returns the unsatisfiable
// core (the original clauses involved in the proof).
func ExtractCore(f *Formula, opts SolverOptions) (*CoreExtraction, error) {
	return core.Extract(f, opts)
}

// IterateCore repeatedly re-solves the extracted core until a fixed point
// or maxIter rounds (the paper uses 30), returning per-iteration sizes.
func IterateCore(f *Formula, maxIter int, opts SolverOptions) (*CoreIteration, error) {
	return core.Iterate(f, maxIter, opts)
}

// TrimStats reports the effect of TrimTrace.
type TrimStats = trim.Stats

// TrimTrace rewrites an UNSAT trace keeping only the clauses its
// empty-clause derivation can reach (renumbered), writing the result to
// sink. The output is a valid — usually much smaller — trace for the same
// formula.
func TrimTrace(f *Formula, src TraceSource, sink TraceSink) (*TrimStats, error) {
	return trim.Trace(f.NumClauses(), src, sink)
}

// Interpolant is a Craig interpolant computed from a resolution proof.
type Interpolant = interp.Interpolant

// Interpolate computes the Craig interpolant of the (A,B) clause partition
// from an UNSAT trace: inA[i] marks original clause i as an A-clause. The
// result satisfies A ⊨ I, I ∧ B unsatisfiable, and vars(I) ⊆
// vars(A) ∩ vars(B); Interpolant.VerifyAgainst machine-checks all three.
func Interpolate(f *Formula, src TraceSource, inA []bool) (*Interpolant, error) {
	return interp.Compute(f, src, inA)
}

// ProofStats describes the structure of a resolution trace (proof-graph
// analytics).
type ProofStats = proofstat.Stats

// AnalyzeProof computes resolution-graph statistics for an UNSAT trace:
// needed clauses, core size, proof depth, chain lengths.
func AnalyzeProof(f *Formula, src TraceSource) (*ProofStats, error) {
	return proofstat.Analyze(f, src)
}

// ExportTraceCheck converts an UNSAT trace into the self-contained
// TraceCheck clause format (each derived clause with its literals and
// resolution chain), validating every step while exporting.
func ExportTraceCheck(f *Formula, src TraceSource, w io.Writer) error {
	_, err := tracecheck.Export(f, src, w)
	return err
}

// MinimalCore shrinks all the way to a minimal unsatisfiable subformula
// (MUS): removing any single clause of the result makes it satisfiable.
// Every intermediate UNSAT verdict is proof-checked and every SAT verdict
// model-checked. Expect one solver run per core clause.
func MinimalCore(f *Formula, opts SolverOptions) (*CoreExtraction, error) {
	ext, _, err := core.Minimal(f, opts)
	return ext, err
}

// Incremental solving (assumption-based sessions where every answer is
// independently validated; see internal/incremental).
type (
	// IncrementalSession is a persistent solver session: clauses persist
	// across calls, learned clauses are reused, and each SolveAssuming answer
	// is validated — UNSAT proofs replay through a native checker, SAT models
	// are checked against every clause and assumption.
	IncrementalSession = incremental.Session
	// IncrementalOptions configures an incremental session.
	IncrementalOptions = incremental.Options
	// MUSExtraction is a minimal unsatisfiable subset with provenance.
	MUSExtraction = incremental.MUSResult
	// VerificationError reports an answer that failed its independent check.
	VerificationError = incremental.VerificationError
)

// ErrSatisfiable is returned by ExtractMUS for satisfiable input.
var ErrSatisfiable = incremental.ErrSatisfiable

// checkMethod maps the facade Method to the incremental subsystem's enum.
func checkMethod(m Method) incremental.CheckMethod {
	switch m {
	case BreadthFirst:
		return incremental.CheckBreadthFirst
	case Hybrid:
		return incremental.CheckHybrid
	case Parallel:
		return incremental.CheckParallel
	default:
		return incremental.CheckDepthFirst
	}
}

// NewIncrementalSession returns an empty validated session whose UNSAT
// answers are checked with method m.
func NewIncrementalSession(m Method, opts SolverOptions) *IncrementalSession {
	return incremental.NewSession(incremental.Options{Solver: opts, Check: checkMethod(m)})
}

// SolveIncremental loads f into a fresh validated session and solves it under
// the given assumptions, returning the session for further calls (add more
// clauses, change assumptions, read Core/Model/CheckResult).
func SolveIncremental(f *Formula, assumps []Lit, m Method, opts SolverOptions) (Status, *IncrementalSession, error) {
	s := NewIncrementalSession(m, opts)
	if err := s.AddFormula(f); err != nil {
		return StatusUnknown, nil, err
	}
	st, err := s.SolveAssuming(assumps)
	return st, s, err
}

// ExtractMUS shrinks f to a minimal unsatisfiable subset on one incremental
// session with clause-selector assumptions, validating every intermediate
// answer (UNSAT steps through a native checker, SAT steps by model). It is
// the session-based successor to MinimalCore — same guarantee, one solver
// instance instead of one per deletion test.
func ExtractMUS(f *Formula, opts SolverOptions) (*MUSExtraction, error) {
	return incremental.ExtractMUS(f, incremental.Options{Solver: opts})
}
