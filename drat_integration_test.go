package satcheck_test

// Differential tests for the clausal (DRUP/DRAT/LRAT) proof subsystem: the
// solver's -drup proof and its native resolution trace must yield the same
// verdict for every UNSAT instance in the generator suite, across the
// forward and backward clausal checkers and the native hybrid/parallel
// checkers, and the backward checker's unsat-core by-product must flow
// through the internal/core iteration pipeline to a fixed point.

import (
	"bytes"
	"testing"

	"satcheck"
	"satcheck/internal/core"
	"satcheck/internal/drat"
	"satcheck/internal/gen"
	"satcheck/internal/solver"
	"satcheck/internal/trace"
)

// solveBoth solves f recording the native trace and a DRUP proof in one run.
func solveBoth(t *testing.T, f *satcheck.Formula) (satcheck.Status, *trace.MemoryTrace, []byte) {
	t.Helper()
	s, err := solver.New(f, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt := &trace.MemoryTrace{}
	s.SetTrace(mt)
	var buf bytes.Buffer
	s.SetProofSink(drat.NewWriter(&buf))
	st, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return st, mt, buf.Bytes()
}

// TestDRATDifferentialSuite checks, for every UNSAT instance of the quick
// generator suite, that the clausal proof verdicts (forward and backward)
// agree with the native hybrid and parallel checkers, and that the LRAT
// bridge emits a proof the independent LRAT checker re-accepts.
func TestDRATDifferentialSuite(t *testing.T) {
	for _, ins := range gen.SuiteQuick() {
		ins := ins
		t.Run(ins.Name, func(t *testing.T) {
			st, mt, proof := solveBoth(t, ins.F)
			if st != satcheck.StatusUnsat {
				t.Skipf("instance is %v; the differential needs UNSAT", st)
			}
			// Native verdicts.
			if _, err := satcheck.Check(ins.F, mt, satcheck.Hybrid, satcheck.CheckOptions{}); err != nil {
				t.Fatalf("native hybrid rejected: %v", err)
			}
			if _, err := satcheck.Check(ins.F, mt, satcheck.Parallel, satcheck.CheckOptions{}); err != nil {
				t.Fatalf("native parallel rejected: %v", err)
			}
			// Clausal verdicts must agree.
			src := satcheck.ProofBytesSource(proof)
			if _, err := satcheck.CheckDRAT(ins.F, src, satcheck.BreadthFirst, satcheck.CheckOptions{}); err != nil {
				t.Fatalf("forward DRAT disagrees with native checkers: %v", err)
			}
			res, err := satcheck.CheckDRAT(ins.F, src, satcheck.Hybrid, satcheck.CheckOptions{})
			if err != nil {
				t.Fatalf("backward DRAT disagrees with native checkers: %v", err)
			}
			if res.CoreClauses == nil {
				t.Fatal("backward DRAT check produced no core")
			}
			// The emitted LRAT must re-verify with the independent checker.
			var lrat bytes.Buffer
			if _, err := satcheck.DRATToLRAT(ins.F, src, &lrat, satcheck.CheckOptions{}); err != nil {
				t.Fatalf("DRAT-to-LRAT conversion failed: %v", err)
			}
			if _, err := satcheck.CheckLRAT(ins.F, satcheck.ProofBytesSource(lrat.Bytes()), satcheck.CheckOptions{}); err != nil {
				t.Fatalf("emitted LRAT rejected by the independent checker: %v", err)
			}
			// A tampered proof must be rejected by both modes (agreement on
			// the negative side). Dropping the second half of the steps loses
			// the empty-clause derivation.
			if len(proof) > 2 {
				half := proof[:len(proof)/2]
				if i := bytes.LastIndexByte(half, '\n'); i > 0 {
					tampered := satcheck.ProofBytesSource(half[:i+1])
					_, fwdErr := satcheck.CheckDRAT(ins.F, tampered, satcheck.BreadthFirst, satcheck.CheckOptions{})
					_, bwdErr := satcheck.CheckDRAT(ins.F, tampered, satcheck.Hybrid, satcheck.CheckOptions{})
					if (fwdErr == nil) != (bwdErr == nil) {
						t.Fatalf("modes disagree on truncated proof: forward=%v backward=%v", fwdErr, bwdErr)
					}
				}
			}
		})
	}
}

// TestDRATBackwardCoreRoundTrip drives the backward checker's unsat core
// through the internal/core pipeline: extract, take the sub-formula,
// re-solve with a DRUP proof, re-check backward, and repeat until the core
// size reaches a fixed point — exactly the paper's iteration loop, but over
// clausal proofs.
func TestDRATBackwardCoreRoundTrip(t *testing.T) {
	f := gen.Pigeonhole(5).F
	cur := f
	prev := cur.NumClauses() + 1
	for iter := 0; iter < 30; iter++ {
		st, _, proof := solveBoth(t, cur)
		if st != satcheck.StatusUnsat {
			t.Fatalf("iteration %d: expected UNSAT, got %v", iter, st)
		}
		res, err := satcheck.CheckDRAT(cur, satcheck.ProofBytesSource(proof), satcheck.DepthFirst, satcheck.CheckOptions{})
		if err != nil {
			t.Fatalf("iteration %d: backward check rejected: %v", iter, err)
		}
		ext, err := core.FromCheck(cur, res)
		if err != nil {
			t.Fatalf("iteration %d: core extraction failed: %v", iter, err)
		}
		if ext.NumClauses > cur.NumClauses() {
			t.Fatalf("iteration %d: core grew: %d > %d", iter, ext.NumClauses, cur.NumClauses())
		}
		if ext.NumClauses == prev {
			return // fixed point
		}
		prev = ext.NumClauses
		cur = ext.Core
	}
	t.Fatal("core iteration did not reach a fixed point in 30 rounds")
}
