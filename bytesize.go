package satcheck

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human-readable byte size for flags like
// -mem-budget: a plain integer is bytes, and the binary suffixes
// KiB/MiB/GiB/TiB (powers of 1024), their one-letter shorthands K/M/G/T,
// and the decimal suffixes KB/MB/GB/TB (powers of 1000) are accepted,
// case-insensitively, with an optional trailing "B" on the shorthands
// ("64MiB", "64m", "512kb", "1073741824").
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("satcheck: empty byte size")
	}
	u := strings.ToLower(t)
	num := u
	var mult int64 = 1
	switch {
	case strings.HasSuffix(u, "kib"):
		num, mult = u[:len(u)-3], 1<<10
	case strings.HasSuffix(u, "mib"):
		num, mult = u[:len(u)-3], 1<<20
	case strings.HasSuffix(u, "gib"):
		num, mult = u[:len(u)-3], 1<<30
	case strings.HasSuffix(u, "tib"):
		num, mult = u[:len(u)-3], 1<<40
	case strings.HasSuffix(u, "kb"):
		num, mult = u[:len(u)-2], 1e3
	case strings.HasSuffix(u, "mb"):
		num, mult = u[:len(u)-2], 1e6
	case strings.HasSuffix(u, "gb"):
		num, mult = u[:len(u)-2], 1e9
	case strings.HasSuffix(u, "tb"):
		num, mult = u[:len(u)-2], 1e12
	case strings.HasSuffix(u, "k"):
		num, mult = u[:len(u)-1], 1<<10
	case strings.HasSuffix(u, "m"):
		num, mult = u[:len(u)-1], 1<<20
	case strings.HasSuffix(u, "g"):
		num, mult = u[:len(u)-1], 1<<30
	case strings.HasSuffix(u, "t"):
		num, mult = u[:len(u)-1], 1<<40
	case strings.HasSuffix(u, "b"):
		num = u[:len(u)-1]
	}
	num = strings.TrimSpace(num)
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("satcheck: bad byte size %q", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("satcheck: byte size %q overflows", s)
	}
	return n * mult, nil
}
