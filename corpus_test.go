package satcheck_test

import (
	"path/filepath"
	"testing"

	"satcheck"
)

// TestGoldenCorpus runs the full pipeline over the committed DIMACS files in
// testdata/corpus: parse from disk, solve, and validate the verdict (model
// check for SAT, all three proof checkers for UNSAT). This pins the
// file-based entry points and guards the generators against silent drift.
func TestGoldenCorpus(t *testing.T) {
	corpus := map[string]satcheck.Status{
		"php4.cnf":           satcheck.StatusUnsat,
		"tseitin10.cnf":      satcheck.StatusUnsat,
		"cec-adder6.cnf":     satcheck.StatusUnsat,
		"bmc-counter4x8.cnf": satcheck.StatusUnsat,
		"sched10x3.cnf":      satcheck.StatusUnsat,
		"sat-chain.cnf":      satcheck.StatusSat,
		"unsat-units.cnf":    satcheck.StatusUnsat,
	}
	for name, want := range corpus {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			f, err := satcheck.ParseDimacsFile(filepath.Join("testdata", "corpus", name))
			if err != nil {
				t.Fatal(err)
			}
			run, err := satcheck.SolveWithProof(f, satcheck.SolverOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if run.Status != want {
				t.Fatalf("status %v, want %v", run.Status, want)
			}
			switch run.Status {
			case satcheck.StatusSat:
				if bad, ok := satcheck.VerifyModel(f, run.Model); !ok {
					t.Errorf("model fails clause %d", bad)
				}
			case satcheck.StatusUnsat:
				for _, m := range []satcheck.Method{satcheck.DepthFirst, satcheck.BreadthFirst, satcheck.Hybrid} {
					if _, err := satcheck.Check(f, run.Trace, m, satcheck.CheckOptions{}); err != nil {
						t.Errorf("%v: %v", m, err)
					}
				}
			}
		})
	}
}
